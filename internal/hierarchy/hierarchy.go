// Package hierarchy implements the dimensional-hierarchy extension the
// paper discusses in §6 (after Sismanis et al., "Hierarchical dwarfs for
// the rollup cube"): dimension hierarchies over DWARF cubes with ROLLUP and
// DRILL DOWN operations. Hierarchy levels are materialized as derived
// dimensions (Station → Area, Day → Month → Year), so the standard DWARF
// ALL machinery answers rollups.
//
// The operations themselves live in internal/query and run on any Querier —
// an in-memory cube, a zero-copy CubeView or the live store — without
// decoding or rebuilding anything. This package keeps Expand (hierarchy
// materialization at construction time) and the cube-materializing RollUp
// wrapper for callers that want the coarser grain as a standalone DWARF.
package hierarchy

import (
	"errors"
	"fmt"

	"repro/internal/dwarf"
	"repro/internal/query"
)

// Hierarchy derives coarser levels from a base dimension.
type Hierarchy struct {
	// BaseDim is the fine-grained dimension the hierarchy refines.
	BaseDim string
	// Levels are the derived levels, coarsest first; each maps a base key
	// to its ancestor key at that level.
	Levels []Level
}

// Level is one derived hierarchy level.
type Level struct {
	Name string
	Map  func(baseKey string) string
}

// Hierarchy errors. ErrUnknownDim is the engine's sentinel, so callers can
// errors.Is-match failures from this package and internal/query alike.
var (
	ErrUnknownDim = query.ErrUnknownDim
	ErrBadLevels  = errors.New("hierarchy: hierarchy needs at least one level")
)

// Expand inserts the derived level dimensions immediately before each base
// dimension, returning the new dimension list and rewritten tuples. The
// result feeds dwarf.New to build a hierarchical cube where a rollup is an
// ALL wildcard on the finer levels.
func Expand(dims []string, tuples []dwarf.Tuple, hs ...Hierarchy) ([]string, []dwarf.Tuple, error) {
	type insertion struct {
		at     int
		levels []Level
	}
	var ins []insertion
	for _, h := range hs {
		if len(h.Levels) == 0 {
			return nil, nil, ErrBadLevels
		}
		at := -1
		for i, d := range dims {
			if d == h.BaseDim {
				at = i
				break
			}
		}
		if at < 0 {
			return nil, nil, fmt.Errorf("%w: %s", ErrUnknownDim, h.BaseDim)
		}
		ins = append(ins, insertion{at: at, levels: h.Levels})
	}

	// Build the new dimension list in a single pass.
	levelsAt := make(map[int][]Level)
	for _, i := range ins {
		levelsAt[i.at] = append(levelsAt[i.at], i.levels...)
	}
	var newDims []string
	for i, d := range dims {
		for _, l := range levelsAt[i] {
			newDims = append(newDims, l.Name)
		}
		newDims = append(newDims, d)
	}
	newTuples := make([]dwarf.Tuple, len(tuples))
	for ti, t := range tuples {
		if len(t.Dims) != len(dims) {
			return nil, nil, fmt.Errorf("hierarchy: tuple %d has %d dims, want %d", ti, len(t.Dims), len(dims))
		}
		keys := make([]string, 0, len(newDims))
		for i, k := range t.Dims {
			for _, l := range levelsAt[i] {
				keys = append(keys, l.Map(k))
			}
			keys = append(keys, k)
		}
		newTuples[ti] = dwarf.Tuple{Dims: keys, Measure: t.Measure}
	}
	return newDims, newTuples, nil
}

// RollUp materializes q at a coarser grain as a standalone DWARF: only the
// dimensions in keep survive (in q's dimension order); all others are
// aggregated away. Aggregate state (count/min/max) is preserved through the
// rebuild. The grouping itself is one kernel walk (query.RollUp), so q may
// be an in-memory cube, a zero-copy view or the live store; callers that
// only need the rows should use query.RollUp directly and skip the build.
func RollUp(q query.Querier, keep ...string) (*dwarf.Cube, error) {
	dims, rows, err := query.RollUp(q, keep...)
	if err != nil {
		return nil, err
	}
	ats := make([]dwarf.AggTuple, len(rows))
	for i, row := range rows {
		ats[i] = dwarf.AggTuple{Dims: row.Keys, Agg: row.Agg}
	}
	return dwarf.NewFromAggregates(dims, ats)
}

// DrillDown enumerates the members one level below a fixed path — the DRILL
// DOWN of §6. It is query.DrillDown, re-exported where the paper's
// hierarchy story lives; q may be a cube, a view or the live store.
func DrillDown(q query.Querier, fixed map[string]string, dim string) (map[string]dwarf.Aggregate, error) {
	return query.DrillDown(q, fixed, dim)
}
