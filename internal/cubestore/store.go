// Package cubestore is the live layer over the DWARF cube pipeline: an
// LSM-of-cubes that makes ingestion durable and continuously queryable.
// Concurrent Append callers enqueue validated batches into a commit queue;
// a single committer goroutine group-commits the queue — every pending
// record written, one fsync for all of them — then folds each batch into
// the in-memory dwarf.Incremental memtable and releases the waiters. When
// the memtable reaches a size or age threshold it is frozen: a fresh
// memtable and a rotated WAL generation are swapped in atomically and the
// frozen (memtable, generation) pair is handed to a background sealer that
// encodes it into an immutable v2 cube segment file and drops the covered
// WAL generations; a background compactor merges small sealed segments into
// larger ones with dwarf.Merge, leveled by tuple count, committing each
// transition by atomically swapping the segment manifest. Queries fan out
// across every sealed segment's zero-copy CubeView, every frozen memtable
// awaiting its seal, and the live memtable cube, and merge the partial
// aggregates, so answers always reflect every acknowledged tuple.
//
// Recovery invariants (docs/STORE.md spells out the full state machine):
// an acknowledged tuple lives in exactly one of {a manifest-listed segment,
// a live WAL generation} — a frozen memtable is the in-memory image of one
// or more still-live WAL generations, so it adds no third durable home;
// segment files the manifest does not list and WAL generations below the
// manifest's WALGen are garbage and are deleted on open; a torn WAL tail
// is discarded because its batch was never acknowledged.
package cubestore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dwarf"
	"repro/internal/qcache"
	"repro/internal/query"
)

// Defaults for Options' zero values.
const (
	DefaultSealTuples    = 16384
	DefaultChunkTuples   = 4096
	DefaultCompactFanout = 4
	DefaultMaxFrozen     = 4
)

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("cubestore: store is closed")

// Options configures Open.
type Options struct {
	// Dims is the cube dimension list. Required when the directory has no
	// manifest yet; on reopen it may be nil (the manifest's list is used)
	// or must match the manifest.
	Dims []string
	// SealTuples seals the memtable into a segment once it holds this many
	// tuples (DefaultSealTuples when 0).
	SealTuples int
	// ChunkTuples is the memtable's Incremental chunk size — how many
	// buffered tuples trigger a merge into the standing live cube
	// (min(DefaultChunkTuples, SealTuples) when 0).
	ChunkTuples int
	// SealAge seals a non-empty memtable this long after its first append,
	// so a slow feed still becomes a durable segment. 0 disables age seals.
	SealAge time.Duration
	// CompactFanout is both the merge width and the leveling base: level n
	// holds segments of [SealTuples·F^n, SealTuples·F^(n+1)) tuples, and a
	// level reaching F segments is compacted into one at level n+1
	// (DefaultCompactFanout when 0).
	CompactFanout int
	// DisableAutoCompact turns the background compactor off; Compact still
	// works when called explicitly. Differential tests use this to drive
	// arbitrary interleavings.
	DisableAutoCompact bool
	// NoSync skips the per-Append fsync. Throughput tests only: a crash may
	// lose acknowledged tuples.
	NoSync bool
	// Workers shards memtable chunk builds and seals (dwarf.WithWorkers).
	Workers int
	// CubeOptions are extra construction options (ablation switches)
	// applied to every memtable build and seal.
	CubeOptions []dwarf.Option
	// CacheBytes bounds the hot-result query cache (internal/qcache): full
	// GroupBy/Pivot/TopK answers stamped with the store generation, plus
	// never-stale per-segment partials. 0 disables caching.
	CacheBytes int64
	// Rollups configures pre-aggregated rollup segments: each entry names a
	// dimension subset the compactor maintains a summary cube for, and
	// grouped queries touching only those dimensions route through the
	// smallest covering rollup instead of every sealed segment.
	Rollups [][]string
	// NoPrune disables zone-map pruning: every query fans out to every
	// sealed segment regardless of its zone maps. Differential tests use it
	// to hold the pruned and unpruned paths to identical answers.
	NoPrune bool
	// MaxFrozen bounds the frozen-memtable queue (DefaultMaxFrozen when 0):
	// when the live memtable is full and this many frozen memtables already
	// await the background sealer, commits wait for a seal to free a slot
	// instead of growing memory without limit.
	MaxFrozen int
}

func (o Options) withDefaults() Options {
	if o.SealTuples <= 0 {
		o.SealTuples = DefaultSealTuples
	}
	if o.ChunkTuples <= 0 {
		o.ChunkTuples = DefaultChunkTuples
		if o.ChunkTuples > o.SealTuples {
			o.ChunkTuples = o.SealTuples
		}
	}
	if o.CompactFanout < 2 {
		o.CompactFanout = DefaultCompactFanout
	}
	if o.MaxFrozen <= 0 {
		o.MaxFrozen = DefaultMaxFrozen
	}
	return o
}

// cubeOptions is the option list for every cube the store builds.
func (o Options) cubeOptions() []dwarf.Option {
	opts := append([]dwarf.Option(nil), o.CubeOptions...)
	if o.Workers > 1 {
		opts = append(opts, dwarf.WithWorkers(o.Workers))
	}
	return opts
}

// segment is one sealed, immutable cube segment: its manifest entry, its
// encoded bytes (heap-backed, so readers holding a snapshot stay valid
// after compaction deletes the file) and the zero-copy view over them.
type segment struct {
	meta segmentMeta
	data []byte
	view *dwarf.CubeView
	// zones are the segment's per-dimension zone maps: the manifest entry's
	// copy when present, else the view's own (v3 streams), else nil — and a
	// nil slice admits every query, so old segments are always scanned.
	zones []dwarf.ZoneMap
}

// frozenMem is a memtable that reached its seal threshold and was swapped
// out of the write path: immutable in content (no more folds), still fully
// queryable, and still covered by its WAL generations until the background
// sealer lands it as a segment. walGenHi is the highest WAL generation
// holding its tuples; the seal that commits it advances the manifest's
// WALGen to walGenHi+1, making those generations dead.
type frozenMem struct {
	mem      *dwarf.Incremental
	count    int
	walGenHi uint64
}

// storeState is the immutable read snapshot queries fan out over. The
// memtable pointers are shared with the writer — Incremental is internally
// locked and its standing cube immutable, so readers of an old snapshot
// keep a complete view while a seal installs the next one. Frozen memtables
// sit between the sealed segments and the live memtable in fan-out order:
// when one seals, its cube moves to the end of segs and off the front of
// frozen, so the merge order of every tuple is stable across the
// transition.
type storeState struct {
	segs    []*segment
	rollups []*rollupSeg
	frozen  []*frozenMem
	mem     *dwarf.Incremental
}

// Store is a WAL-backed live cube store. All methods are safe for
// concurrent use. Queries never take the store's writer lock — they read
// an atomic snapshot — but a query that finds pending memtable tuples
// flushes them under the memtable's own mutex, so a concurrent Append can
// wait for one chunk build (bounded by ChunkTuples); seals and compactions
// are never blocked by readers.
//
// Appends do not take mu either: they enqueue onto the commit queue and a
// single committer goroutine holds mu across each group commit. Only the
// committer, the sealer, compaction manifest swaps, and Stats/TotalTuples
// take mu.
type Store struct {
	dir  string
	opts Options
	// dims is the immutable dimension list (a copy of the manifest's),
	// readable without holding mu.
	dims []string

	// lock is the exclusive directory lock held for the store's lifetime.
	lock *dirLock

	// qmu guards the commit queue. Append enqueues under qmu and blocks on
	// its request's done channel; the committer drains the whole queue in
	// one swap and commits it as a group under mu. qmu is never held
	// together with mu.
	qmu     sync.Mutex
	qcond   *sync.Cond
	queue   []*commitReq
	qclosed bool

	// mu serializes state writers: the committer, freezes, seal and
	// compaction manifest swaps.
	mu     sync.Mutex
	closed bool
	// fatalErr, once set, disables Append: the WAL and memtable may have
	// diverged (a record reached the file but its write errored, so the
	// batch was never acknowledged yet would replay). A seal that advances
	// the manifest's WALGen past fatalGen clears it — sealing rotates away
	// from and deletes the suspect generation, re-grounding disk state on
	// the memtable's contents.
	fatalErr error
	fatalGen uint64
	wal      *wal
	mem      *dwarf.Incremental
	memCount int
	memSince time.Time
	// frozen is the FIFO queue of memtables awaiting the background sealer,
	// oldest first; its length is bounded by Options.MaxFrozen via commit
	// backpressure.
	frozen []*frozenMem
	// sealAborted, once set (mu held), halts the frozen queue: a seal
	// failed during or after its manifest write, so whether it committed
	// is unknown, and re-running it could list the memtable's segment
	// twice. The store stays consistent, queryable and appendable — the
	// frozen tuples are served from memory and still WAL-covered if the
	// swap didn't land — and the next open resolves which outcome
	// happened from the manifest. Failures before the manifest write
	// (build, encode, segment write) commit nothing and stay retryable.
	sealAborted error
	man         manifest
	segs        []*segment
	rollups     []*rollupSeg

	state atomic.Pointer[storeState]

	// gen is the store's visible-state generation: it starts from the
	// manifest's persisted value and is bumped on every visible transition
	// (append, seal, compaction, rollup swap). Writers bump it under mu;
	// queries read it lock-free to stamp and validate cached results.
	gen atomic.Uint64

	// cache holds hot query results and per-segment partials (nil when
	// Options.CacheBytes is 0). rollupSpecs is the normalized form of
	// Options.Rollups, fixed at Open.
	cache       *qcache.Cache
	rollupSpecs []rollupSpec
	rollupHits  atomic.Int64

	// segsScanned / segsPruned count sealed and rollup fan-out targets that
	// queries actually ran versus targets dropped because their zone maps
	// proved no selected tuple could match. The live memtable is counted in
	// neither — it is never pruned.
	segsScanned atomic.Int64
	segsPruned  atomic.Int64

	// compactMu serializes compactions (background loop and explicit
	// Compact calls); sealMu serializes seals (the background sealer and
	// explicit Seal calls draining the frozen queue). Neither is ever held
	// together with mu, and they are never held together.
	compactMu sync.Mutex
	sealMu    sync.Mutex

	kick chan struct{}
	// sealKick wakes the background sealer: sent on every freeze and
	// whenever the committer sees frozen memtables pending (which retries a
	// previously failed seal under ingest pressure).
	sealKick chan struct{}
	// frozenFreed is signalled each time a seal commits, waking commits
	// blocked on MaxFrozen backpressure.
	frozenFreed chan struct{}
	closing     chan struct{}
	bg          sync.WaitGroup

	seals       atomic.Int64
	compactions atomic.Int64
	appended    atomic.Int64

	// groupCommits counts committer rounds (each is at most one fsync);
	// fsyncsSaved counts synced batches that shared a group leader's fsync
	// instead of issuing their own, so groupCommits + fsyncsSaved equals
	// the number of acked synced batches. frozenTotal counts lifetime
	// freezes.
	groupCommits atomic.Int64
	fsyncsSaved  atomic.Int64
	frozenTotal  atomic.Int64

	// dirSyncErrs counts failed directory syncs after post-commit file
	// deletions (dead WAL gens, replaced rollups). Not fatal — the orphans
	// are re-deleted on the next open — but surfaced in Stats rather than
	// dropped. errMu guards lastDirSyncErr (writers hold varying locks).
	dirSyncErrs    atomic.Int64
	errMu          sync.Mutex
	lastDirSyncErr string

	// streamingCompacts / fallbackCompacts split compactions by merge path,
	// so a store silently living on the decode fallback is visible in Stats.
	streamingCompacts atomic.Int64
	fallbackCompacts  atomic.Int64

	// disableStreamingCompact forces the decode+MergeAll fallback; tests use
	// it to hold both compaction paths to the same answers.
	disableStreamingCompact bool

	// orphansRemoved counts files deleted by recovery at Open; recovery
	// tests assert interrupted seals and compactions leave nothing behind.
	orphansRemoved int

	// lastSealErr / lastCompactErr record the most recent background seal
	// or compaction failure (mu held) so a store whose maintenance has
	// stopped working is visible in Stats instead of failing silently.
	lastSealErr    string
	lastCompactErr string

	// failpoint, when set by tests (setFailpoint), is called at named commit
	// points; an error aborts the operation there, leaving the on-disk state
	// exactly as a crash at that point would. The in-memory store is then
	// poisoned and must be dropped via crashClose. Atomic because the
	// background sealer reads it while tests swap it mid-run.
	failpoint atomic.Pointer[func(name string) error]
}

// Failpoint names, in commit order.
const (
	fpCommitWrite            = "commit:write"
	fpSealBuilt              = "seal:built"
	fpSealSegmentWritten     = "seal:segment-written"
	fpSealManifestSwapped    = "seal:manifest-swapped"
	fpCompactSegmentWritten  = "compact:segment-written"
	fpCompactManifestSwapped = "compact:manifest-swapped"
)

func (s *Store) fail(name string) error {
	fp := s.failpoint.Load()
	if fp == nil {
		return nil
	}
	return (*fp)(name)
}

// setFailpoint installs (or with nil clears) the test failpoint hook.
func (s *Store) setFailpoint(fn func(name string) error) {
	if fn == nil {
		s.failpoint.Store(nil)
		return
	}
	s.failpoint.Store(&fn)
}

// Open opens (creating if needed) the store rooted at dir: it loads the
// manifest, deletes orphaned segment and dead WAL files, opens a view over
// every live segment, replays live WAL generations into a fresh memtable,
// rotates to a new WAL generation and starts the background compactor.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	lock, err := acquireDirLock(dir)
	if err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if !ok {
			lock.release()
		}
	}()
	man, found, err := loadManifest(dir)
	if err != nil {
		return nil, err
	}
	if !found {
		if len(opts.Dims) == 0 {
			return nil, errors.New("cubestore: new store needs Options.Dims")
		}
		// A directory holding segment or WAL files without a manifest is a
		// damaged store, not a fresh one — initializing would make
		// removeOrphans wipe it. Refuse, like openSegments refuses a
		// missing listed segment.
		if err := refuseStoreFilesWithoutManifest(dir); err != nil {
			return nil, err
		}
		man = manifest{
			Version: manifestVersion,
			Dims:    append([]string(nil), opts.Dims...),
		}
		// Commit the initial manifest immediately: everything after this
		// point (WAL creation included) assumes the manifest is the root
		// of truth on disk.
		if err := writeManifest(dir, man); err != nil {
			return nil, err
		}
	} else if len(opts.Dims) > 0 && !sameDims(opts.Dims, man.Dims) {
		return nil, fmt.Errorf("cubestore: store has dims %v, Options.Dims is %v", man.Dims, opts.Dims)
	}

	s := &Store{
		dir:         dir,
		opts:        opts,
		dims:        append([]string(nil), man.Dims...),
		lock:        lock,
		man:         man,
		kick:        make(chan struct{}, 1),
		sealKick:    make(chan struct{}, 1),
		frozenFreed: make(chan struct{}, 1),
		closing:     make(chan struct{}),
	}
	s.qcond = sync.NewCond(&s.qmu)
	s.gen.Store(man.Generation)
	if s.rollupSpecs, err = normalizeRollupSpecs(opts.Rollups, s.dims); err != nil {
		return nil, err
	}
	if opts.CacheBytes > 0 {
		s.cache = qcache.New(opts.CacheBytes)
	}
	if err := s.removeOrphans(); err != nil {
		return nil, err
	}
	if err := s.openSegments(); err != nil {
		return nil, err
	}
	if err := s.openRollups(); err != nil {
		return nil, err
	}
	if err := s.recoverWAL(); err != nil {
		return nil, err
	}
	s.publish()
	s.bg.Add(3)
	go s.committer()
	go s.sealer()
	go s.background()
	ok = true
	return s, nil
}

// refuseStoreFilesWithoutManifest fails when dir already holds segment or
// WAL files but no manifest (lost or partially restored store).
func refuseStoreFilesWithoutManifest(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if _, isWAL := walGenOf(e.Name()); isSegFile(e.Name()) || isWAL {
			return fmt.Errorf("cubestore: %s contains store file %s but no %s — refusing to initialize over a damaged store",
				dir, e.Name(), manifestName)
		}
	}
	return nil
}

func sameDims(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// removeOrphans deletes every file the manifest does not account for:
// segments from interrupted seals/compactions, rollups from interrupted
// rollup swaps, WAL generations already sealed, and temp files.
func (s *Store) removeOrphans() error {
	live := make(map[string]bool, len(s.man.Segments)+len(s.man.Rollups))
	for _, m := range s.man.Segments {
		live[m.File] = true
	}
	for _, m := range s.man.Rollups {
		live[m.File] = true
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	removed := false
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		drop := false
		switch {
		case isStoreTempFile(name):
			drop = true
		case isSegFile(name), isRollupFile(name):
			drop = !live[name]
		default:
			if gen, ok := walGenOf(name); ok {
				drop = gen < s.man.WALGen
			}
		}
		if drop {
			if err := os.Remove(filepath.Join(s.dir, name)); err != nil {
				return err
			}
			s.orphansRemoved++
			removed = true
		}
	}
	if removed {
		return fsyncDir(s.dir)
	}
	return nil
}

// openSegments loads and fully validates every manifest-listed segment. A
// listed segment that is missing or corrupt is real data loss, so Open
// fails loudly rather than serving partial answers.
func (s *Store) openSegments() error {
	for _, m := range s.man.Segments {
		data, err := os.ReadFile(filepath.Join(s.dir, m.File))
		if err != nil {
			return fmt.Errorf("cubestore: manifest lists %s: %w", m.File, err)
		}
		view, err := dwarf.OpenView(data)
		if err != nil {
			return fmt.Errorf("cubestore: segment %s: %w", m.File, err)
		}
		zones := m.Zones
		if len(zones) != len(s.dims) {
			zones = view.ZoneMaps()
		}
		s.segs = append(s.segs, &segment{meta: m, data: data, view: view, zones: zones})
	}
	return nil
}

// recoverWAL replays every live WAL generation, oldest first, into a fresh
// memtable, then rotates to a new generation so appends never extend a file
// that may end in a torn record.
func (s *Store) recoverWAL() error {
	mem, err := dwarf.NewIncremental(s.dims, s.opts.ChunkTuples, s.opts.cubeOptions()...)
	if err != nil {
		return err
	}
	s.mem = mem
	gens, err := listWALGens(s.dir)
	if err != nil {
		return err
	}
	active := s.man.WALGen
	for _, gen := range gens {
		if gen < s.man.WALGen {
			continue // removed as orphan already; defensive
		}
		err := replayWAL(walPath(s.dir, gen), func(tuples []dwarf.Tuple) error {
			s.memCount += len(tuples)
			return mem.AddBatch(tuples)
		})
		if err != nil {
			return fmt.Errorf("cubestore: replaying %s: %w", walPath(s.dir, gen), err)
		}
		if gen >= active {
			active = gen + 1
		}
	}
	if s.memCount > 0 {
		s.memSince = time.Now()
	}
	s.wal, err = openWAL(s.dir, active)
	if err != nil {
		return err
	}
	return fsyncDir(s.dir)
}

// publish installs the current segments + rollups + memtable as the read
// snapshot and bumps the generation: every visible transition (seal,
// compaction, rollup swap, plus Append bumping directly) invalidates
// generation-stamped cached results. Callers hold mu (or are still
// single-goroutine in Open).
func (s *Store) publish() {
	segs := make([]*segment, len(s.segs))
	copy(segs, s.segs)
	rollups := make([]*rollupSeg, len(s.rollups))
	copy(rollups, s.rollups)
	frozen := make([]*frozenMem, len(s.frozen))
	copy(frozen, s.frozen)
	s.state.Store(&storeState{segs: segs, rollups: rollups, frozen: frozen, mem: s.mem})
	s.gen.Add(1)
}

// Generation returns the store's visible-state generation: a monotonic
// counter bumped on every append, seal, compaction and rollup swap, and
// persisted in the manifest across reopens. Two equal readings with no
// bump in between guarantee the store answered identically throughout.
func (s *Store) Generation() uint64 { return s.gen.Load() }

// Dims returns the store's dimension names in order.
func (s *Store) Dims() []string { return append([]string(nil), s.dims...) }

// NumDims returns the number of dimensions.
func (s *Store) NumDims() int { return len(s.dims) }

// commitReq is one Append waiting in the commit queue: its validated batch,
// the pre-framed WAL record (encoded by the caller, off the serial path),
// and the channel the committer acks on.
type commitReq struct {
	tuples []dwarf.Tuple
	rec    []byte
	done   chan error
}

// Append validates and durably logs one batch, then folds it into the live
// memtable — when Append returns, every tuple is crash-safe (unless NoSync)
// and visible to queries. Concurrent Appends are group-committed: the
// committer goroutine writes every queued record and issues one fsync for
// the whole group, so N concurrent writers share a single disk flush
// instead of serializing N of them. Reaching the seal threshold freezes the
// memtable for the background sealer; the ack never waits on a seal.
func (s *Store) Append(tuples []dwarf.Tuple) error {
	if len(tuples) == 0 {
		return nil
	}
	// Validate before the WAL write with dwarf.New's own rules (the same
	// ValidateTuple the builder applies), so a logged batch can never fail
	// to replay.
	for i, t := range tuples {
		if err := dwarf.ValidateTuple(t, len(s.dims)); err != nil {
			return fmt.Errorf("cubestore: tuple %d: %w", i, err)
		}
	}
	// Frame the WAL record here, outside any lock: CRC and encoding are the
	// CPU cost of a commit, and paying it per caller keeps the committer's
	// serial section down to write+fsync+fold.
	bp := walRecPool.Get().(*[]byte)
	rec := appendWALRecord(*bp, tuples)
	*bp = rec
	if len(rec)-8 > maxWALRecord {
		// Size check fires before any byte is written: plain rejection.
		walRecPool.Put(bp)
		return fmt.Errorf("%w (%d bytes)", ErrBatchTooLarge, len(rec)-8)
	}
	req := &commitReq{tuples: tuples, rec: rec, done: make(chan error, 1)}
	s.qmu.Lock()
	if s.qclosed {
		s.qmu.Unlock()
		walRecPool.Put(bp)
		return ErrClosed
	}
	s.queue = append(s.queue, req)
	s.qcond.Signal()
	s.qmu.Unlock()
	err := <-req.done
	walRecPool.Put(bp)
	return err
}

// committer is the single consumer of the commit queue: it drains every
// pending request in one swap and commits them as a group. Queue depth is
// naturally bounded — each Append has at most one request outstanding — so
// a group is at most one batch per concurrent writer.
func (s *Store) committer() {
	defer s.bg.Done()
	for {
		s.qmu.Lock()
		for len(s.queue) == 0 && !s.qclosed {
			s.qcond.Wait()
		}
		group := s.queue
		s.queue = nil
		closed := s.qclosed
		s.qmu.Unlock()
		if closed {
			// Requests still queued at Close were never committed: fail
			// them so no caller blocks forever.
			for _, r := range group {
				r.done <- ErrClosed
			}
			return
		}
		s.commitGroup(group)
	}
}

// commitGroup makes one group of batches durable and visible: every record
// written to the WAL, ONE fsync for all of them, then each batch folded
// into the memtable, then the acks. Per-caller semantics are exactly those
// of the old serialized Append — when done receives nil, that batch is
// durable (unless NoSync) and visible to queries.
func (s *Store) commitGroup(group []*commitReq) {
	s.mu.Lock()
	// Backpressure: with the live memtable at its threshold and the frozen
	// queue at its bound, adding more would grow memory without limit.
	// Kick the sealer (retrying a previously failed seal, if that is what
	// backed the queue up) and wait for a slot; the poll interval makes the
	// retry loop self-driving even if a seal failure ate the kick.
	for !s.closed && s.sealAborted == nil && s.memCount >= s.opts.SealTuples && len(s.frozen) >= s.opts.MaxFrozen {
		s.kickSeal()
		s.mu.Unlock()
		select {
		case <-s.frozenFreed:
		case <-s.closing:
		case <-time.After(50 * time.Millisecond):
		}
		s.mu.Lock()
	}
	if s.closed {
		s.mu.Unlock()
		for _, r := range group {
			r.done <- ErrClosed
		}
		return
	}
	if s.fatalErr != nil {
		err := fmt.Errorf("cubestore: appends disabled until the next successful seal or reopen: %w", s.fatalErr)
		s.mu.Unlock()
		for _, r := range group {
			r.done <- err
		}
		return
	}
	if err := s.fail(fpCommitWrite); err != nil {
		// A crash with the group still queued: nothing written, nothing
		// acked. The callers see the failure and the WAL is untouched, so
		// none of these batches may surface after a reopen.
		s.mu.Unlock()
		for _, r := range group {
			r.done <- err
		}
		return
	}
	var werr error
	wrote := 0
	for _, r := range group {
		if werr = s.wal.writeRecord(r.rec); werr != nil {
			break
		}
		wrote++
	}
	if werr == nil && !s.opts.NoSync {
		werr = s.wal.sync()
	}
	if werr != nil {
		// Records may be partly or fully on disk without having been
		// acknowledged; accepting more appends (a client retry, say) into
		// the same generation could double-count them after a crash.
		s.fatalErr = werr
		s.fatalGen = s.wal.gen
		s.mu.Unlock()
		for _, r := range group {
			r.done <- werr
		}
		return
	}
	s.groupCommits.Add(1)
	if !s.opts.NoSync && wrote > 1 {
		s.fsyncsSaved.Add(int64(wrote - 1))
	}
	// Fold each batch into the memtable. A fold failure poisons the store
	// (logged but not in the memtable: the generation must not be replayed
	// against this memtable's seals) and fails that batch and the rest of
	// the group; earlier batches are already durable and visible, so they
	// still ack.
	folded := 0
	var foldErr error
	for _, r := range group {
		if foldErr = s.mem.AddBatch(r.tuples); foldErr != nil {
			s.fatalErr = foldErr
			s.fatalGen = s.wal.gen
			break
		}
		if s.memCount == 0 {
			s.memSince = time.Now()
		}
		s.memCount += len(r.tuples)
		s.appended.Add(int64(len(r.tuples)))
		folded++
	}
	// The group is visible in the memtable; bump the generation so cached
	// results are recomputed. The bump happens after the folds and before
	// the acks, so a query that read the old generation either recomputes
	// (and sees a consistent snapshot) or serves a result from before the
	// batches were acknowledged — never a stale hit after an ack.
	if folded > 0 {
		s.gen.Add(1)
	}
	if s.fatalErr == nil && s.memCount >= s.opts.SealTuples && len(s.frozen) < s.opts.MaxFrozen {
		// The batches are already durable and visible, so the acks must not
		// depend on the freeze: a failure (e.g. the new WAL generation could
		// not be opened) is recorded and retried on the next group, while
		// the tuples stay covered by the live WAL.
		if err := s.freezeLocked(); err != nil {
			s.lastSealErr = err.Error()
		}
	}
	if len(s.frozen) > 0 {
		s.kickSeal()
	}
	s.mu.Unlock()
	for i, r := range group {
		if i < folded {
			r.done <- nil
		} else {
			r.done <- foldErr
		}
	}
}

// freezeLocked retires the live memtable into the frozen queue and rotates
// the WAL: a fresh memtable and a new WAL generation are swapped in, and
// the frozen (memtable, generation-range) pair waits for the background
// sealer. Callers hold mu. Nothing is written or deleted here — the frozen
// tuples stay covered by their (now idle) WAL generations until the seal
// commits, so a crash at any point replays them.
func (s *Store) freezeLocked() error {
	if s.memCount == 0 {
		return nil
	}
	mem, err := dwarf.NewIncremental(s.dims, s.opts.ChunkTuples, s.opts.cubeOptions()...)
	if err != nil {
		return err
	}
	nw, err := openWAL(s.dir, s.wal.gen+1)
	if err != nil {
		return err
	}
	fz := &frozenMem{mem: s.mem, count: s.memCount, walGenHi: s.wal.gen}
	// A close error here is not data loss: the frozen memtable holds every
	// acked tuple and the seal re-grounds disk state on it. (With NoSync a
	// lost buffered record was already inside the NoSync crash window.)
	s.wal.close()
	s.wal = nw
	s.mem = mem
	s.memCount = 0
	s.memSince = time.Time{}
	s.frozen = append(s.frozen, fz)
	s.frozenTotal.Add(1)
	s.publish()
	s.kickSeal()
	return nil
}

func (s *Store) kickSeal() {
	select {
	case s.sealKick <- struct{}{}:
	default:
	}
}

// Seal forces every buffered tuple into sealed segments now: the live
// memtable is frozen (no-op when empty) and the frozen queue drained
// synchronously. Safe alongside concurrent appends and the background
// sealer.
func (s *Store) Seal() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	err := s.freezeLocked()
	s.mu.Unlock()
	if err != nil {
		return err
	}
	_, err = s.drainFrozen()
	return err
}

// sealer is the background half of the freeze/seal split: each kick drains
// the frozen queue. A failed seal is recorded in lastSealErr and the entry
// stays at the front of the queue; the retry rides the next kick (a new
// freeze, an explicit Seal, commit backpressure, or an age tick).
func (s *Store) sealer() {
	defer s.bg.Done()
	for {
		select {
		case <-s.closing:
			return
		case <-s.sealKick:
		}
		if n, err := s.drainFrozen(); err == nil && n > 0 {
			// New segments may have made a compaction level full.
			select {
			case s.kick <- struct{}{}:
			default:
			}
		}
	}
}

// drainFrozen seals frozen memtables oldest-first until the queue is empty
// or a seal fails, returning how many sealed. sealMu makes it safe to call
// from both the background sealer and explicit Seal. FIFO order is what
// keeps the manifest's WALGen monotonic: each commit advances it to the
// sealed memtable's walGenHi+1.
func (s *Store) drainFrozen() (int, error) {
	s.sealMu.Lock()
	defer s.sealMu.Unlock()
	sealed := 0
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return sealed, ErrClosed
		}
		if err := s.sealAborted; err != nil {
			s.mu.Unlock()
			return sealed, err
		}
		if len(s.frozen) == 0 {
			s.mu.Unlock()
			return sealed, nil
		}
		fz := s.frozen[0]
		s.mu.Unlock()
		if err := s.sealFrozen(fz); err != nil {
			if !errors.Is(err, ErrClosed) {
				s.mu.Lock()
				s.lastSealErr = err.Error()
				s.mu.Unlock()
			}
			return sealed, err
		}
		sealed++
	}
}

// sealFrozen turns one frozen memtable into a durable segment. Commit order
// — segment file, then manifest, then WAL deletion — is what recovery leans
// on: before the manifest swap the tuples are still covered by live WAL
// generations and the segment file is an orphan; after it, the WAL
// generations are dead. The expensive build runs without mu, so commits and
// queries proceed; only the id reservation and the manifest swap take the
// lock. The in-memory swap happens only once the on-disk state is fully
// committed, so any earlier error leaves a consistent store with the entry
// still frozen and still WAL-covered.
func (s *Store) sealFrozen(fz *frozenMem) error {
	cube, err := fz.mem.Cube()
	if err != nil {
		return err
	}
	encoded, err := encodeCube(cube)
	if err != nil {
		return err
	}
	if err := s.fail(fpSealBuilt); err != nil {
		return err
	}
	view, err := dwarf.OpenViewTrusted(encoded)
	if err != nil {
		return err
	}
	// Reserve the output id so a compaction racing with this seal cannot
	// allocate the same segment file name; the reservation is persisted by
	// whichever manifest swap commits first.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	id := s.man.NextSegID
	s.man.NextSegID++
	s.mu.Unlock()
	meta := segmentMeta{File: segFileName(id), Tuples: fz.count, Zones: view.ZoneMaps()}
	if err := writeSegmentFile(s.dir, meta.File, encoded); err != nil {
		return err
	}
	if err := s.fail(fpSealSegmentWritten); err != nil {
		return err
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	newGen := fz.walGenHi + 1
	newMan := s.man.clone()
	if newMan.NextSegID <= id {
		newMan.NextSegID = id + 1
	}
	if newGen > newMan.WALGen {
		newMan.WALGen = newGen
	}
	newMan.Segments = append(newMan.Segments, meta)
	// publish() below bumps the in-memory generation to exactly this value;
	// persisting it keeps the sequence monotonic across reopens.
	newMan.Generation = s.gen.Load() + 1
	// Past this point a failure is indeterminate — the rename may or may
	// not have landed — so it latches sealAborted instead of retrying (see
	// the field comment for why both outcomes stay consistent).
	if err := writeManifest(s.dir, newMan); err != nil {
		s.sealAborted = err
		s.mu.Unlock()
		return err
	}
	if err := s.fail(fpSealManifestSwapped); err != nil {
		s.sealAborted = err
		s.mu.Unlock()
		return err
	}

	// On-disk state is committed; swap in-memory state. The sealed memtable
	// is frozen[0] (FIFO), so appending its segment and popping the front
	// keeps every tuple's position in the fan-out order unchanged.
	s.man = newMan
	s.segs = append(s.segs, &segment{meta: meta, data: encoded, view: view, zones: meta.Zones})
	s.frozen = s.frozen[1:]
	if s.fatalErr != nil && newGen > s.fatalGen {
		// The suspect generation is now dead and about to be deleted; disk
		// state is re-grounded on what the memtables held.
		s.fatalErr = nil
	}
	s.publish()
	s.seals.Add(1)
	s.lastSealErr = ""
	s.mu.Unlock()
	select {
	case s.frozenFreed <- struct{}{}:
	default:
	}

	// Drop the dead WAL generations. A failed directory sync here is
	// surfaced in Stats but is not data loss: the deletions are of dead
	// files, and any that survive a crash are re-deleted on the next open.
	if gens, err := listWALGens(s.dir); err == nil {
		removed := false
		for _, gen := range gens {
			if gen < newMan.WALGen {
				os.Remove(walPath(s.dir, gen))
				removed = true
			}
		}
		if removed {
			s.noteDirSync(fsyncDir(s.dir))
		}
	}
	return nil
}

// noteDirSync records a failed directory sync (nil is a no-op): counted and
// kept in Stats so a store whose metadata flushes are failing is visible.
func (s *Store) noteDirSync(err error) {
	if err == nil {
		return
	}
	s.dirSyncErrs.Add(1)
	s.errMu.Lock()
	s.lastDirSyncErr = err.Error()
	s.errMu.Unlock()
}

func encodeCube(c *dwarf.Cube) ([]byte, error) {
	var buf bytes.Buffer
	if err := c.EncodeIndexed(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// background runs age-based seals and auto-compaction until Close.
func (s *Store) background() {
	defer s.bg.Done()
	var tick <-chan time.Time
	if s.opts.SealAge > 0 {
		// SealAge/2 truncates to 0 for SealAge == 1ns and NewTicker panics
		// on non-positive intervals; clamp to a floor that still fires well
		// within any human-scale SealAge.
		interval := s.opts.SealAge / 2
		if interval < time.Millisecond {
			interval = time.Millisecond
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-s.closing:
			return
		case <-s.kick:
			// A kick can arrive long after the last tick (e.g. a seal from a
			// burst of appends); an aged memtable must not wait another half
			// SealAge behind it.
			s.sealIfAged()
			s.compactBackground()
		case <-tick:
			s.sealIfAged()
			s.compactBackground()
		}
	}
}

// compactBackground runs auto-compaction, recording rather than returning
// failures — a store whose maintenance is stuck must stay queryable and
// appendable, but visibly so (Stats.LastCompactError).
func (s *Store) compactBackground() {
	if s.opts.DisableAutoCompact {
		return
	}
	if _, err := s.Compact(); err != nil && !errors.Is(err, ErrClosed) {
		s.mu.Lock()
		s.lastCompactErr = err.Error()
		s.mu.Unlock()
	}
}

func (s *Store) sealIfAged() {
	if s.opts.SealAge <= 0 {
		return
	}
	s.mu.Lock()
	if s.closed || s.memCount == 0 || time.Since(s.memSince) < s.opts.SealAge {
		// Still give a stuck frozen queue (a previously failed seal) its
		// retry tick.
		retry := !s.closed && len(s.frozen) > 0
		s.mu.Unlock()
		if retry {
			s.kickSeal()
		}
		return
	}
	if err := s.freezeLocked(); err != nil {
		s.lastSealErr = err.Error()
	}
	s.mu.Unlock()
}

// levelOf maps a segment's tuple count to its compaction level.
func (s *Store) levelOf(tuples int) int {
	f := s.opts.CompactFanout
	lvl := 0
	for t := tuples / s.opts.SealTuples; t >= f; t /= f {
		lvl++
	}
	return lvl
}

// Compact merges sealed segments level by level until no level holds
// CompactFanout segments, returning the number of compactions run. It is
// safe alongside concurrent appends, seals and queries; the background
// compactor calls it after every seal.
func (s *Store) Compact() (int, error) {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	n := 0
	for {
		did, err := s.compactOnce()
		if err != nil {
			return n, err
		}
		if !did {
			break
		}
		n++
	}
	// With the segment set settled, bring rollup segments up to date; they
	// are maintained here (under compactMu) because only compactions ever
	// remove segments — between compactions a rollup's cover can only
	// become a subset of the live set, never inconsistent with it.
	if err := s.maintainRollups(); err != nil {
		return n, err
	}
	return n, nil
}

// compactOnce merges the oldest CompactFanout segments of the fullest
// eligible level into one. The expensive part — merge, encode, write —
// runs without mu, so appends and queries proceed; only the manifest swap
// takes the writer lock. compactMu guarantees a single compactor, so the
// picked inputs cannot disappear meanwhile (seals only add segments).
//
// The happy path is the streaming k-way merge: dwarf.MergeViews descends
// the segments' zero-copy views directly and writes the merged v2-indexed
// segment in one pass, so compaction never materializes a node graph and
// its working set is the output segment plus O(depth·fanout·k) cursor
// state — not the sum of the decoded inputs. If the streaming merge fails
// (e.g. a segment outgrew the u32 offset index), compaction falls back to
// decoding every input and folding them with one k-way dwarf.MergeAll.
func (s *Store) compactOnce() (bool, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false, ErrClosed
	}
	group := s.pickCompaction()
	// Reserve the output id in memory so a seal racing with this compaction
	// cannot allocate the same segment file name; the reservation is
	// persisted by whichever manifest swap commits first.
	id := s.man.NextSegID
	if group != nil {
		s.man.NextSegID++
	}
	s.mu.Unlock()
	if group == nil {
		return false, nil
	}

	tuples := 0
	for _, seg := range group {
		tuples += seg.meta.Tuples
	}
	var encoded []byte
	streamed := false
	if !s.disableStreamingCompact {
		views := make([]*dwarf.CubeView, len(group))
		for i, seg := range group {
			views[i] = seg.view
		}
		if enc, _, err := dwarf.MergeViewsBytes(views...); err == nil {
			encoded = enc
			streamed = true
		}
	}
	if encoded == nil {
		// Fallback: decode every input once and fold them with a single
		// k-way merge (one coalesce pass, not k-1 pairwise re-coalesces).
		cubes := make([]*dwarf.Cube, len(group))
		for i, seg := range group {
			c, err := dwarf.DecodeBytes(seg.data)
			if err != nil {
				return false, fmt.Errorf("cubestore: decoding %s: %w", seg.meta.File, err)
			}
			cubes[i] = c
		}
		merged, err := dwarf.MergeAll(cubes...)
		if err != nil {
			return false, err
		}
		if encoded, err = encodeCube(merged); err != nil {
			return false, err
		}
	}
	view, err := dwarf.OpenViewTrusted(encoded)
	if err != nil {
		return false, err
	}
	meta := segmentMeta{File: segFileName(id), Tuples: tuples, Zones: view.ZoneMaps()}
	if err := writeSegmentFile(s.dir, meta.File, encoded); err != nil {
		return false, err
	}
	if err := s.fail(fpCompactSegmentWritten); err != nil {
		return false, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, ErrClosed
	}
	inputs := make(map[string]bool, len(group))
	for _, seg := range group {
		inputs[seg.meta.File] = true
	}
	newMan := s.man.clone()
	if newMan.NextSegID <= id {
		newMan.NextSegID = id + 1
	}
	newMan.Generation = s.gen.Load() + 1
	out := newMan.Segments[:0]
	inserted := false
	for _, m := range newMan.Segments {
		if inputs[m.File] {
			if !inserted {
				// The merged segment takes the position of the oldest
				// input, keeping Segments ordered oldest-first.
				out = append(out, meta)
				inserted = true
			}
			continue
		}
		out = append(out, m)
	}
	newMan.Segments = out
	if err := writeManifest(s.dir, newMan); err != nil {
		return false, err
	}
	if err := s.fail(fpCompactManifestSwapped); err != nil {
		return false, err
	}
	s.man = newMan
	newSegs := make([]*segment, 0, len(s.segs))
	insertedSeg := false
	for _, seg := range s.segs {
		if inputs[seg.meta.File] {
			if !insertedSeg {
				newSegs = append(newSegs, &segment{meta: meta, data: encoded, view: view, zones: meta.Zones})
				insertedSeg = true
			}
			os.Remove(filepath.Join(s.dir, seg.meta.File))
			continue
		}
		newSegs = append(newSegs, seg)
	}
	s.segs = newSegs
	// The rename'd manifest was already dir-synced by writeManifest; this
	// sync covers the input-segment deletions. Failure is surfaced in Stats,
	// not fatal: resurrected deleted files are re-removed on the next open.
	s.noteDirSync(fsyncDir(s.dir))
	s.publish()
	s.compactions.Add(1)
	if streamed {
		s.streamingCompacts.Add(1)
	} else {
		s.fallbackCompacts.Add(1)
	}
	s.lastCompactErr = ""
	return true, nil
}

// pickCompaction returns the oldest CompactFanout segments of the lowest
// level holding at least CompactFanout of them. Callers hold mu.
func (s *Store) pickCompaction() []*segment {
	byLevel := make(map[int][]*segment)
	minLevel := -1
	for _, seg := range s.segs {
		l := s.levelOf(seg.meta.Tuples)
		byLevel[l] = append(byLevel[l], seg)
		if len(byLevel[l]) >= s.opts.CompactFanout && (minLevel < 0 || l < minLevel) {
			minLevel = l
		}
	}
	if minLevel < 0 {
		return nil
	}
	return byLevel[minLevel][:s.opts.CompactFanout]
}

// Close stops the committer, sealer and background compactor and closes
// the WAL. It does not seal: live and frozen memtable tuples stay covered
// by the live WAL generations and replay on the next Open. Appends still
// queued (never committed) fail with ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.closing)
	s.mu.Unlock()
	s.qmu.Lock()
	s.qclosed = true
	s.qcond.Broadcast()
	s.qmu.Unlock()
	s.bg.Wait()
	s.compactMu.Lock() // wait out a straggling explicit Compact
	s.compactMu.Unlock()
	s.sealMu.Lock() // and a straggling explicit Seal's drain
	s.sealMu.Unlock()
	err := s.wal.close()
	s.lock.release()
	return err
}

// crashClose drops the store as a crash would: no WAL flush, no tidy-up.
// Recovery tests pair it with failpoint-aborted operations.
func (s *Store) crashClose() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.closing)
	}
	s.mu.Unlock()
	s.qmu.Lock()
	s.qclosed = true
	s.qcond.Broadcast()
	s.qmu.Unlock()
	s.bg.Wait()
	s.sealMu.Lock()
	s.sealMu.Unlock()
	s.wal.abandon()
	s.lock.release()
}

// ---- Queries ----

// The store implements every shape of the shared query surface
// (query.Querier) the same way: run the unified kernel against each target
// — every sealed segment's zero-copy CubeView plus the live memtable cube,
// both dwarf.Sources answering through the same kernel code — then merge
// the partial results in deterministic target order. Aggregate shapes merge
// with dwarf.MergeAggregates; keyed shapes merge per key
// (dwarf.MergeGroupMaps / dwarf.MergePivotGroups); TopK cuts only after
// every partial group is in, so a key that is small in every segment but
// large in total still ranks (docs/QUERY.md).

// targets snapshots the fan-out set: every sealed segment view, every
// frozen memtable awaiting its seal, and the live cube, minus segments
// whose zone maps prove no selected tuple can live there. admit is the
// per-segment admission test (dwarf.ZonesAdmit or ZonesAdmitPoint closed
// over the query); nil disables pruning, as does Options.NoPrune. Skipping
// a segment never changes the merged answer: an absent key contributes the
// zero Aggregate, and merging zero is identity. Frozen memtables are never
// pruned (no zone maps) and count in neither scan counter, like the live
// memtable. The snapshot is immutable, so the query runs lock-free even
// while commits, seals and compactions swap the store state underneath.
func (s *Store) targets(admit func([]dwarf.ZoneMap) bool) ([]query.Querier, error) {
	st := s.state.Load()
	live, err := st.mem.Cube()
	if err != nil {
		return nil, err
	}
	if s.opts.NoPrune {
		admit = nil
	}
	out := make([]query.Querier, 0, len(st.segs)+len(st.frozen)+1)
	pruned := int64(0)
	for _, seg := range st.segs {
		if admit != nil && !admit(seg.zones) {
			pruned++
			continue
		}
		out = append(out, seg.view)
	}
	if pruned > 0 {
		s.segsPruned.Add(pruned)
	}
	s.segsScanned.Add(int64(len(out)))
	for _, fz := range st.frozen {
		c, err := fz.mem.Cube()
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return append(out, live), nil
}

// admitRange closes dwarf.ZonesAdmit over one selector list.
func admitRange(sels []dwarf.Selector) func([]dwarf.ZoneMap) bool {
	return func(zones []dwarf.ZoneMap) bool { return dwarf.ZonesAdmit(zones, sels) }
}

// fanOut runs fn against every target, concurrently when there are several,
// and hands the partial results to merge in deterministic target order.
func fanOut[T any](targets []query.Querier, fn func(query.Querier) (T, error)) ([]T, error) {
	results := make([]T, len(targets))
	if len(targets) <= 2 || runtime.GOMAXPROCS(0) == 1 {
		for i, q := range targets {
			r, err := fn(q)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, q := range targets {
		wg.Add(1)
		go func(i int, q query.Querier) {
			defer wg.Done()
			results[i], errs[i] = fn(q)
		}(i, q)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

func (s *Store) aggQuery(admit func([]dwarf.ZoneMap) bool, fn func(query.Querier) (dwarf.Aggregate, error)) (dwarf.Aggregate, error) {
	targets, err := s.targets(admit)
	if err != nil {
		return dwarf.Aggregate{}, err
	}
	parts, err := fanOut(targets, fn)
	if err != nil {
		return dwarf.Aggregate{}, err
	}
	var agg dwarf.Aggregate
	for _, p := range parts {
		agg = dwarf.MergeAggregates(agg, p)
	}
	return agg, nil
}

// groupQuery fans a per-key map shape out and merges the partials per key.
func (s *Store) groupQuery(admit func([]dwarf.ZoneMap) bool, fn func(query.Querier) (map[string]dwarf.Aggregate, error)) (map[string]dwarf.Aggregate, error) {
	targets, err := s.targets(admit)
	if err != nil {
		return nil, err
	}
	parts, err := fanOut(targets, fn)
	if err != nil {
		return nil, err
	}
	return dwarf.MergeGroupMaps(make(map[string]dwarf.Aggregate), parts...), nil
}

// Point answers a point/ALL query across every sealed segment and the live
// memtable, reflecting every acknowledged tuple. Segments whose zone maps
// exclude any bound key are pruned from the fan-out.
func (s *Store) Point(keys ...string) (dwarf.Aggregate, error) {
	admit := func(zones []dwarf.ZoneMap) bool { return dwarf.ZonesAdmitPoint(zones, keys) }
	return s.aggQuery(admit, func(q query.Querier) (dwarf.Aggregate, error) { return q.Point(keys...) })
}

// Range aggregates the sub-cube addressed by one selector per dimension
// across segments and the live memtable, pruning segments whose zone maps
// prove the selection empty there.
func (s *Store) Range(sels []dwarf.Selector) (dwarf.Aggregate, error) {
	return s.aggQuery(admitRange(sels), func(q query.Querier) (dwarf.Aggregate, error) { return q.Range(sels) })
}

// GroupBy groups the dimension at index dim under the restriction of sels,
// merging per-key partial aggregates across segments and the live memtable.
// With a result cache or rollup segments configured it runs through the
// planned path in cached.go; answers are identical either way.
func (s *Store) GroupBy(dim int, sels []dwarf.Selector) (map[string]dwarf.Aggregate, error) {
	if (s.cache != nil || len(s.rollupSpecs) > 0) &&
		dim >= 0 && dim < len(s.dims) && len(sels) == len(s.dims) {
		return s.groupByPlanned(dim, sels)
	}
	return s.groupQuery(admitRange(sels), func(q query.Querier) (map[string]dwarf.Aggregate, error) {
		return q.GroupBy(dim, sels)
	})
}

// Pivot is the multi-dimension GroupBy across segments and the live
// memtable: per-target sorted rows are merged per key tuple, so the result
// is exactly a single cube's Pivot over all acknowledged tuples.
func (s *Store) Pivot(dims []int, sels []dwarf.Selector) ([]dwarf.PivotGroup, error) {
	if (s.cache != nil || len(s.rollupSpecs) > 0) && validPivotArgs(dims, sels, len(s.dims)) {
		return s.pivotPlanned(dims, sels)
	}
	targets, err := s.targets(admitRange(sels))
	if err != nil {
		return nil, err
	}
	parts, err := fanOut(targets, func(q query.Querier) ([]dwarf.PivotGroup, error) {
		return q.Pivot(dims, sels)
	})
	if err != nil {
		return nil, err
	}
	return dwarf.MergePivotGroups(parts...), nil
}

// TopK ranks the groups of the dimension at index dim across segments and
// the live memtable. Partial group maps are merged before the threshold and
// K cut — a per-target cut would drop keys whose weight is spread across
// segments — so the ranking equals a single cube's over all acknowledged
// tuples.
func (s *Store) TopK(dim int, sels []dwarf.Selector, spec dwarf.TopKSpec) ([]dwarf.GroupEntry, error) {
	if (s.cache != nil || len(s.rollupSpecs) > 0) &&
		dim >= 0 && dim < len(s.dims) && len(sels) == len(s.dims) {
		return s.topKPlanned(dim, sels, spec)
	}
	groups, err := s.groupQuery(admitRange(sels), func(q query.Querier) (map[string]dwarf.Aggregate, error) {
		return q.GroupBy(dim, sels)
	})
	if err != nil {
		return nil, err
	}
	return dwarf.TopKFromGroups(groups, spec), nil
}

// The store serves the full shared query surface.
var _ query.Querier = (*Store)(nil)

// TotalTuples reports every acknowledged source tuple: sealed plus frozen
// plus live. It reads counters only — no memtable flush — so per-request
// callers (/ingest) stay cheap.
func (s *Store) TotalTuples() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := s.memCount
	for _, fz := range s.frozen {
		total += fz.count
	}
	for _, seg := range s.segs {
		total += seg.meta.Tuples
	}
	return total
}

// SegmentInfo describes one sealed segment in Stats.
type SegmentInfo struct {
	File   string `json:"file"`
	Tuples int    `json:"tuples"`
	Level  int    `json:"level"`
	Bytes  int    `json:"bytes"`
}

// RollupInfo describes one rollup segment in Stats.
type RollupInfo struct {
	File   string   `json:"file"`
	Dims   []string `json:"dims"`
	Covers int      `json:"covers"`
	Tuples int      `json:"tuples"`
	Bytes  int      `json:"bytes"`
}

// Stats is a point-in-time description of the store.
//
// NOTE: internal/serve's hand-rolled encoder mirrors this struct field for
// field in declaration order; adding or reordering fields requires the
// matching change in serve/encode.go (TestModesByteIdentical pins it).
type Stats struct {
	Dims         []string      `json:"dims"`
	Segments     []SegmentInfo `json:"segments"`
	Rollups      []RollupInfo  `json:"rollups,omitempty"`
	SealedTuples int           `json:"sealed_tuples"`
	LiveTuples   int           `json:"live_tuples"`
	TotalTuples  int           `json:"total_tuples"`
	SealedBytes  int64         `json:"sealed_bytes"`
	WALGen       uint64        `json:"wal_gen"`
	// Generation is the visible-state generation (see Store.Generation).
	Generation  uint64 `json:"generation"`
	WALBytes    int64  `json:"wal_bytes"`
	Seals       int64  `json:"seals"`
	Compactions int64  `json:"compactions"`
	Appended    int64  `json:"appended"`

	// StreamingCompactions counts compactions that ran the zero-copy k-way
	// merge; FallbackCompactions counts those that fell back to decoding
	// the inputs. Their sum is Compactions.
	StreamingCompactions int64 `json:"streaming_compactions"`
	FallbackCompactions  int64 `json:"fallback_compactions"`

	// Query-cache counters (all zero when Options.CacheBytes is 0):
	// hits/misses/stale count full-result lookups (stale = an entry was
	// present but stamped with an older generation, so the miss came from
	// write churn rather than a cold cache), the partial pair counts
	// per-segment partial lookups, RollupHits counts grouped queries the
	// planner routed through a rollup segment.
	CacheHits          int64 `json:"cache_hits"`
	CacheMisses        int64 `json:"cache_misses"`
	CacheStale         int64 `json:"cache_stale"`
	CachePartialHits   int64 `json:"cache_partial_hits"`
	CachePartialMisses int64 `json:"cache_partial_misses"`
	CacheBytes         int64 `json:"cache_bytes"`
	CacheEntries       int   `json:"cache_entries"`
	RollupHits         int64 `json:"rollup_hits"`

	// SegmentsScanned / SegmentsPruned count sealed and rollup fan-out
	// targets actually run versus targets dropped because their zone maps
	// proved no selected tuple could match (the live memtable counts in
	// neither). Zero pruned with NoPrune set, or when every segment predates
	// zone maps.
	SegmentsScanned int64 `json:"segments_scanned"`
	SegmentsPruned  int64 `json:"segments_pruned"`

	// GroupCommits counts committer rounds — each is at most one WAL fsync,
	// however many concurrent Appends it covered. FsyncsSaved counts synced
	// batches that rode a group leader's fsync instead of issuing their
	// own: GroupCommits + FsyncsSaved equals the number of acked synced
	// batches, and FsyncsSaved is zero under a single writer (or NoSync).
	GroupCommits int64 `json:"group_commits"`
	FsyncsSaved  int64 `json:"fsyncs_saved"`

	// FrozenMemtables counts lifetime memtable freezes (threshold, age or
	// explicit Seal); SealQueueDepth is how many frozen memtables currently
	// await the background sealer (bounded by Options.MaxFrozen). Their
	// tuples count in LiveTuples until the seal commits.
	FrozenMemtables int64 `json:"frozen_memtables"`
	SealQueueDepth  int   `json:"seal_queue_depth"`

	// DirSyncErrors counts failed directory syncs after post-commit file
	// deletions (dead WAL generations, replaced rollups); LastDirSyncError
	// is the most recent one. Not data loss — surviving files are
	// re-deleted on the next open — but a disk whose metadata flushes fail
	// should be visible.
	DirSyncErrors int64 `json:"dir_sync_errors"`

	// LastSealError / LastCompactError are the most recent background
	// maintenance failures, empty once the next attempt succeeds.
	LastSealError    string `json:"last_seal_error,omitempty"`
	LastCompactError string `json:"last_compact_error,omitempty"`
	LastDirSyncError string `json:"last_dir_sync_error,omitempty"`
}

// Stats reports the store's current shape: segment inventory by level, live
// and sealed tuple counts, WAL position and lifetime seal/compaction
// counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Dims:        append([]string(nil), s.dims...),
		Segments:    []SegmentInfo{},
		LiveTuples:  s.memCount,
		WALGen:      s.wal.gen,
		Generation:  s.gen.Load(),
		WALBytes:    s.wal.bytes,
		Seals:       s.seals.Load(),
		Compactions: s.compactions.Load(),
		Appended:    s.appended.Load(),

		StreamingCompactions: s.streamingCompacts.Load(),
		FallbackCompactions:  s.fallbackCompacts.Load(),

		RollupHits: s.rollupHits.Load(),

		SegmentsScanned: s.segsScanned.Load(),
		SegmentsPruned:  s.segsPruned.Load(),

		GroupCommits: s.groupCommits.Load(),
		FsyncsSaved:  s.fsyncsSaved.Load(),

		FrozenMemtables: s.frozenTotal.Load(),
		SealQueueDepth:  len(s.frozen),

		DirSyncErrors: s.dirSyncErrs.Load(),

		LastSealError:    s.lastSealErr,
		LastCompactError: s.lastCompactErr,
	}
	for _, fz := range s.frozen {
		st.LiveTuples += fz.count
	}
	for _, seg := range s.segs {
		st.Segments = append(st.Segments, SegmentInfo{
			File:   seg.meta.File,
			Tuples: seg.meta.Tuples,
			Level:  s.levelOf(seg.meta.Tuples),
			Bytes:  len(seg.data),
		})
		st.SealedTuples += seg.meta.Tuples
		st.SealedBytes += int64(len(seg.data))
	}
	for _, r := range s.rollups {
		st.Rollups = append(st.Rollups, RollupInfo{
			File:   r.meta.File,
			Dims:   append([]string(nil), r.meta.Dims...),
			Covers: len(r.meta.Covers),
			Tuples: r.meta.Tuples,
			Bytes:  len(r.data),
		})
	}
	s.mu.Unlock()
	s.errMu.Lock()
	st.LastDirSyncError = s.lastDirSyncErr
	s.errMu.Unlock()
	if s.cache != nil {
		cs := s.cache.Stats()
		st.CacheHits, st.CacheMisses, st.CacheStale = cs.Hits, cs.Misses, cs.Stale
		st.CachePartialHits, st.CachePartialMisses = cs.PartialHits, cs.PartialMisses
		st.CacheBytes, st.CacheEntries = cs.Bytes, cs.Entries
	}
	st.TotalTuples = st.SealedTuples + st.LiveTuples
	return st
}
