package cubestore

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"slices"
	"sync"
	"testing"
	"time"

	"repro/internal/dwarf"
	"repro/internal/query"
)

// Differential suite: a store built by arbitrary interleavings of
// Append/Seal/Compact must answer every query shape identically to one
// dwarf.New batch build over the same tuples, under every ablation option
// set and worker count. Measures are small integers so sums are exact in
// float64 regardless of the order partial aggregates merge in.

var testDims = []string{"A", "B", "C"}
var testDimSizes = []int{3, 4, 5}

func ablationSets() [][]dwarf.Option {
	return [][]dwarf.Option{
		nil,
		{dwarf.WithoutSuffixCoalescing()},
		{dwarf.WithoutHashConsing()},
		{dwarf.WithoutSuffixCoalescing(), dwarf.WithoutHashConsing()},
	}
}

func dimKey(dim, k int) string { return fmt.Sprintf("d%dk%d", dim, k) }

func randTuples(rng *rand.Rand, n int) []dwarf.Tuple {
	out := make([]dwarf.Tuple, n)
	for i := range out {
		dims := make([]string, len(testDims))
		for d := range dims {
			dims[d] = dimKey(d, rng.Intn(testDimSizes[d]))
		}
		out[i] = dwarf.Tuple{Dims: dims, Measure: float64(rng.Intn(9) + 1)}
	}
	return out
}

func randSelectors(rng *rand.Rand) []dwarf.Selector {
	sels := make([]dwarf.Selector, len(testDims))
	for d := range sels {
		switch rng.Intn(3) {
		case 0:
			sels[d] = dwarf.SelectAll()
		case 1:
			n := rng.Intn(3) + 1
			keys := make([]string, n)
			for i := range keys {
				keys[i] = dimKey(d, rng.Intn(testDimSizes[d]))
			}
			sels[d] = dwarf.SelectKeys(keys...)
		default:
			a, b := rng.Intn(testDimSizes[d]), rng.Intn(testDimSizes[d])
			if a > b {
				a, b = b, a
			}
			sels[d] = dwarf.SelectRange(dimKey(d, a), dimKey(d, b))
		}
	}
	return sels
}

// compareStore holds every query shape of the store equal to a batch cube
// over the same tuples. exhaustive probes the full point cross product;
// otherwise a sampled battery runs.
func compareStore(t *testing.T, s *Store, all []dwarf.Tuple, opts []dwarf.Option, rng *rand.Rand, exhaustive bool) {
	t.Helper()
	ref, err := dwarf.New(testDims, all, opts...)
	if err != nil {
		t.Fatal(err)
	}
	points := 40
	if exhaustive {
		points = 0
		var walk func(prefix []string, d int)
		var probes [][]string
		walk = func(prefix []string, d int) {
			if d == len(testDims) {
				probes = append(probes, append([]string(nil), prefix...))
				return
			}
			for k := 0; k < testDimSizes[d]; k++ {
				walk(append(prefix, dimKey(d, k)), d+1)
			}
			walk(append(prefix, dwarf.All), d+1)
		}
		walk(nil, 0)
		for _, keys := range probes {
			got, err := s.Point(keys...)
			if err != nil {
				t.Fatalf("Point%v: %v", keys, err)
			}
			want, _ := ref.Point(keys...)
			if !got.Equal(want) {
				t.Fatalf("Point%v: store=%+v batch=%+v", keys, got, want)
			}
		}
	}
	for q := 0; q < points; q++ {
		keys := make([]string, len(testDims))
		for d := range keys {
			if rng.Intn(4) == 0 {
				keys[d] = dwarf.All
			} else {
				keys[d] = dimKey(d, rng.Intn(testDimSizes[d]))
			}
		}
		got, err := s.Point(keys...)
		if err != nil {
			t.Fatalf("Point%v: %v", keys, err)
		}
		want, _ := ref.Point(keys...)
		if !got.Equal(want) {
			t.Fatalf("Point%v: store=%+v batch=%+v", keys, got, want)
		}
	}
	ranges := 10
	if exhaustive {
		ranges = 40
	}
	for q := 0; q < ranges; q++ {
		sels := randSelectors(rng)
		got, err := s.Range(sels)
		if err != nil {
			t.Fatalf("Range%+v: %v", sels, err)
		}
		want, _ := ref.Range(sels)
		if !got.Equal(want) {
			t.Fatalf("Range%+v: store=%+v batch=%+v", sels, got, want)
		}
	}
	groupRounds := 3
	if exhaustive {
		groupRounds = 10
	}
	for dim := range testDims {
		for q := 0; q < groupRounds; q++ {
			sels := randSelectors(rng)
			got, err := s.GroupBy(dim, sels)
			if err != nil {
				t.Fatalf("GroupBy(%d): %v", dim, err)
			}
			want, _ := ref.GroupBy(dim, sels)
			if len(got) != len(want) {
				t.Fatalf("GroupBy(%d)%+v: %d groups, batch has %d\nstore=%v\nbatch=%v",
					dim, sels, len(got), len(want), got, want)
			}
			for k, a := range want {
				if !got[k].Equal(a) {
					t.Fatalf("GroupBy(%d) key %q: store=%+v batch=%+v", dim, k, got[k], a)
				}
			}

			// TopK: the store's merged-then-cut ranking must equal a single
			// batch cube's, entry for entry (order included).
			spec := dwarf.TopKSpec{K: 1 + rng.Intn(4), By: dwarf.Metric(rng.Intn(5))}
			if rng.Intn(2) == 0 {
				spec.Threshold, spec.HasThreshold = float64(rng.Intn(20)), true
			}
			gotK, err := s.TopK(dim, sels, spec)
			if err != nil {
				t.Fatalf("TopK(%d): %v", dim, err)
			}
			wantK, _ := ref.TopK(dim, sels, spec)
			if len(gotK) != len(wantK) {
				t.Fatalf("TopK(%d)%+v: %d entries, batch has %d\nstore=%v\nbatch=%v",
					dim, spec, len(gotK), len(wantK), gotK, wantK)
			}
			for i := range wantK {
				if gotK[i].Key != wantK[i].Key || !gotK[i].Agg.Equal(wantK[i].Agg) {
					t.Fatalf("TopK(%d)%+v entry %d: store=%+v batch=%+v", dim, spec, i, gotK[i], wantK[i])
				}
			}
		}
	}
	for q := 0; q < groupRounds; q++ {
		sels := randSelectors(rng)
		groupDims := pivotDims(rng)
		got, err := s.Pivot(groupDims, sels)
		if err != nil {
			t.Fatalf("Pivot(%v): %v", groupDims, err)
		}
		want, _ := ref.Pivot(groupDims, sels)
		comparePivot(t, fmt.Sprintf("Pivot(%v)%+v", groupDims, sels), got, want)
	}
	// The hierarchy surface runs on the store via the same kernel: RollUp
	// and DrillDown must match the batch cube too.
	dims, got, err := query.RollUp(s, "C", "A")
	if err != nil {
		t.Fatalf("RollUp: %v", err)
	}
	wantDims, want, _ := query.RollUp(ref, "C", "A")
	if !slices.Equal(dims, wantDims) {
		t.Fatalf("RollUp dims = %v, batch says %v", dims, wantDims)
	}
	comparePivot(t, "RollUp(C,A)", got, want)
	fixed := map[string]string{"A": dimKey(0, rng.Intn(testDimSizes[0]))}
	gotDrill, err := query.DrillDown(s, fixed, "B")
	if err != nil {
		t.Fatalf("DrillDown: %v", err)
	}
	wantDrill, _ := query.DrillDown(ref, fixed, "B")
	if len(gotDrill) != len(wantDrill) {
		t.Fatalf("DrillDown(%v): %d members, batch has %d", fixed, len(gotDrill), len(wantDrill))
	}
	for k, a := range wantDrill {
		if !gotDrill[k].Equal(a) {
			t.Fatalf("DrillDown(%v)[%q]: store=%+v batch=%+v", fixed, k, gotDrill[k], a)
		}
	}
	if got := s.TotalTuples(); got != len(all) {
		t.Fatalf("TotalTuples = %d, appended %d", got, len(all))
	}
}

// pivotDims picks a random non-empty ordered subset of the dimensions.
func pivotDims(rng *rand.Rand) []int {
	perm := rng.Perm(len(testDims))
	return perm[:1+rng.Intn(len(perm))]
}

func comparePivot(t *testing.T, label string, got, want []dwarf.PivotGroup) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, batch has %d\nstore=%v\nbatch=%v", label, len(got), len(want), got, want)
	}
	for i := range want {
		if !slices.Equal(got[i].Keys, want[i].Keys) || !got[i].Agg.Equal(want[i].Agg) {
			t.Fatalf("%s row %d: store=%+v batch=%+v", label, i, got[i], want[i])
		}
	}
}

func TestStoreDifferential(t *testing.T) {
	for ai, opts := range ablationSets() {
		for _, workers := range []int{1, 4} {
			opts, workers := opts, workers
			t.Run(fmt.Sprintf("ablation%d/workers%d", ai, workers), func(t *testing.T) {
				t.Parallel()
				rng := rand.New(rand.NewSource(int64(100*ai + workers)))
				dir := t.TempDir()
				storeOpts := Options{
					Dims:               testDims,
					SealTuples:         96,
					ChunkTuples:        7,
					CompactFanout:      3,
					DisableAutoCompact: true,
					NoSync:             true,
					Workers:            workers,
					CubeOptions:        opts,
				}
				s, err := Open(dir, storeOpts)
				if err != nil {
					t.Fatal(err)
				}
				var all []dwarf.Tuple
				for step := 0; step < 70; step++ {
					switch rng.Intn(10) {
					case 0:
						if err := s.Seal(); err != nil {
							t.Fatal(err)
						}
					case 1:
						if _, err := s.Compact(); err != nil {
							t.Fatal(err)
						}
					default:
						batch := randTuples(rng, rng.Intn(25)+1)
						if err := s.Append(batch); err != nil {
							t.Fatal(err)
						}
						all = append(all, batch...)
					}
					if step%9 == 0 {
						compareStore(t, s, all, opts, rng, false)
					}
				}
				compareStore(t, s, all, opts, rng, true)
				st := s.Stats()
				if st.TotalTuples != len(all) || st.SealedTuples+st.LiveTuples != len(all) {
					t.Fatalf("stats %+v inconsistent with %d appended", st, len(all))
				}
				if err := s.Close(); err != nil {
					t.Fatal(err)
				}

				// Reopen (manifest supplies the dims) and hold the same
				// equalities: WAL replay plus segments reconstruct the store.
				s2, err := Open(dir, Options{
					SealTuples:         storeOpts.SealTuples,
					ChunkTuples:        storeOpts.ChunkTuples,
					CompactFanout:      storeOpts.CompactFanout,
					DisableAutoCompact: true,
					NoSync:             true,
					Workers:            workers,
					CubeOptions:        opts,
				})
				if err != nil {
					t.Fatal(err)
				}
				defer s2.Close()
				compareStore(t, s2, all, opts, rng, true)
			})
		}
	}
}

// TestStoreConcurrentReaders drives ingestion, automatic seals and
// background compactions while reader goroutines query continuously; under
// -race this is the proof that snapshots stay consistent through state
// swaps. Every acked batch must be immediately visible to the writer
// (read-your-writes), and readers must observe monotonically non-decreasing
// totals.
func TestStoreConcurrentReaders(t *testing.T) {
	s, err := Open(t.TempDir(), Options{
		Dims:          testDims,
		SealTuples:    120,
		ChunkTuples:   16,
		CompactFanout: 3,
		NoSync:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	allSels := []dwarf.Selector{dwarf.SelectAll(), dwarf.SelectAll(), dwarf.SelectAll()}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			var lastCount int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				agg, err := s.Point(dwarf.All, dwarf.All, dwarf.All)
				if err != nil {
					t.Error(err)
					return
				}
				if agg.Count < lastCount {
					t.Errorf("reader %d: total count went backwards: %d -> %d", r, lastCount, agg.Count)
					return
				}
				lastCount = agg.Count
				if _, err := s.GroupBy(rng.Intn(3), allSels); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Range(randSelectors(rng)); err != nil {
					t.Error(err)
					return
				}
			}
		}(r)
	}

	rng := rand.New(rand.NewSource(99))
	var all []dwarf.Tuple
	for i := 0; i < 300; i++ {
		batch := randTuples(rng, rng.Intn(12)+1)
		if err := s.Append(batch); err != nil {
			t.Fatal(err)
		}
		all = append(all, batch...)
		if i%20 == 0 {
			// Read-your-writes: the ack already covers this batch.
			agg, err := s.Point(dwarf.All, dwarf.All, dwarf.All)
			if err != nil {
				t.Fatal(err)
			}
			if agg.Count != int64(len(all)) {
				t.Fatalf("after ack of %d tuples, ALL count = %d", len(all), agg.Count)
			}
		}
	}
	close(stop)
	readers.Wait()
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	compareStore(t, s, all, nil, rng, true)
	if st := s.Stats(); st.Seals == 0 || st.Compactions == 0 {
		t.Fatalf("wanted seals and compactions to happen during the run, got %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreAppendValidation(t *testing.T) {
	s, err := Open(t.TempDir(), Options{Dims: testDims, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cases := []struct {
		tuple dwarf.Tuple
		want  error
	}{
		{dwarf.Tuple{Dims: []string{"x"}, Measure: 1}, dwarf.ErrDimMismatch},
		{dwarf.Tuple{Dims: []string{"x", dwarf.All, "z"}, Measure: 1}, dwarf.ErrReservedKey},
		{dwarf.Tuple{Dims: []string{"x", "y", "z"}, Measure: nan()}, dwarf.ErrNotFiniteValue},
	}
	for _, c := range cases {
		if err := s.Append([]dwarf.Tuple{c.tuple}); !errors.Is(err, c.want) {
			t.Errorf("Append(%+v) = %v, want %v", c.tuple, err, c.want)
		}
	}
	if got := s.TotalTuples(); got != 0 {
		t.Fatalf("rejected tuples leaked in: TotalTuples = %d", got)
	}
	if err := s.Append(nil); err != nil {
		t.Errorf("empty append: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(randTuples(rand.New(rand.NewSource(1)), 1)); !errors.Is(err, ErrClosed) {
		t.Errorf("append after close = %v", err)
	}
	if err := s.Seal(); !errors.Is(err, ErrClosed) {
		t.Errorf("seal after close = %v", err)
	}
}

// TestStoreAppendAckSurvivesSealFailure: once the WAL write and memtable
// insert committed, the Append ack must not depend on the seal — a failed
// seal is recorded in Stats and retried, with the tuples still covered by
// the live WAL and visible to queries.
func TestStoreAppendAckSurvivesSealFailure(t *testing.T) {
	s, err := Open(t.TempDir(), Options{
		Dims:               testDims,
		SealTuples:         10,
		DisableAutoCompact: true,
		NoSync:             true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.setFailpoint(func(name string) error {
		if name == fpSealBuilt {
			return errInjected
		}
		return nil
	})
	rng := rand.New(rand.NewSource(3))
	batch := randTuples(rng, 12) // crosses the threshold, freezing for the sealer
	if err := s.Append(batch); err != nil {
		t.Fatalf("ack must not depend on the seal: %v", err)
	}
	// The seal runs in the background sealer now; wait for its failure to
	// surface. The frozen memtable keeps serving its tuples throughout.
	waitForStats(t, s, "failed seal recorded", func(st Stats) bool { return st.LastSealError != "" })
	st := s.Stats()
	if st.Seals != 0 || st.LiveTuples != 12 || st.FrozenMemtables != 1 || st.SealQueueDepth != 1 {
		t.Fatalf("failed seal not recorded: %+v", st)
	}
	agg, err := s.Point(dwarf.All, dwarf.All, dwarf.All)
	if err != nil || agg.Count != 12 {
		t.Fatalf("acked tuples not visible after seal failure: %+v, %v", agg, err)
	}
	// Maintenance heals: with the failpoint cleared, the frozen memtable is
	// still queued and the next drain (explicit Seal here, for determinism)
	// seals it plus the fresh live tuples, clearing the recorded error.
	s.setFailpoint(nil)
	if err := s.Append(randTuples(rng, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.LastSealError != "" || st.Seals != 2 || st.SealedTuples != 13 || st.LiveTuples != 0 || st.SealQueueDepth != 0 {
		t.Fatalf("seal retry did not heal: %+v", st)
	}
}

// waitForStats polls Stats until cond holds, failing the test after a
// deadline — the seam between synchronous acks and the async sealer.
func waitForStats(t *testing.T, s *Store, what string, cond func(Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond(s.Stats()) {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s: %+v", what, s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestStoreOpenValidation(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("open without dims on a fresh directory should fail")
	}
	s, err := Open(dir, Options{Dims: testDims, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Dims: []string{"other"}}); err == nil {
		t.Fatal("open with mismatched dims should fail")
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen with manifest dims: %v", err)
	}
	if got := s2.Dims(); len(got) != len(testDims) || got[0] != testDims[0] {
		t.Fatalf("dims = %v", got)
	}
	s2.Close()
}

// TestStoreSingleWriterLock: a second Open of the same directory must fail
// while the first store is alive (two writers would delete each other's
// WAL generations), and succeed after Close releases the lock.
func TestStoreSingleWriterLock(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("flock guard is unix-only")
	}
	dir := t.TempDir()
	s, err := Open(dir, Options{Dims: testDims, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{NoSync: true}); err == nil {
		t.Fatal("second Open of a live store directory must fail")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatalf("open after close: %v", err)
	}
	s2.Close()
}

// TestStoreOrphanRemovalSparesForeignFiles: recovery cleans only the
// store's own garbage — a user's .tmp or other file sharing the directory
// (dwarfd -live serves static cubes from it) must survive.
func TestStoreOrphanRemovalSparesForeignFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Dims: testDims, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	foreign := []string{"notes.tmp", "mycube.dwarf", "readme.txt", "seg-week.dwarf"}
	for _, name := range foreign {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("keep me"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Plus genuine store garbage that must go.
	if err := os.WriteFile(filepath.Join(dir, "seg-123.tmp"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for _, name := range foreign {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("foreign file %s was deleted by recovery: %v", name, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "seg-123.tmp")); err == nil {
		t.Error("store temp file survived recovery")
	}
}

// TestStoreCompactionPaths drives the same workload through both
// compaction engines — the streaming zero-copy k-way merge (the happy
// path, which never decodes a segment) and the forced decode+MergeAll
// fallback — and holds both stores to the batch-build answers. It also
// pins the path accounting in Stats.
func TestStoreCompactionPaths(t *testing.T) {
	for _, fallback := range []bool{false, true} {
		name := "streaming"
		if fallback {
			name = "fallback"
		}
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			s, err := Open(t.TempDir(), Options{
				Dims:               testDims,
				SealTuples:         40,
				ChunkTuples:        16,
				CompactFanout:      3,
				DisableAutoCompact: true,
				NoSync:             true,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			s.disableStreamingCompact = fallback
			var all []dwarf.Tuple
			for i := 0; i < 12; i++ {
				batch := randTuples(rng, 40)
				if err := s.Append(batch); err != nil {
					t.Fatal(err)
				}
				all = append(all, batch...)
				if err := s.Seal(); err != nil {
					t.Fatal(err)
				}
			}
			n, err := s.Compact()
			if err != nil {
				t.Fatal(err)
			}
			if n == 0 {
				t.Fatal("expected at least one compaction")
			}
			st := s.Stats()
			if st.StreamingCompactions+st.FallbackCompactions != st.Compactions {
				t.Fatalf("path counters %d+%d disagree with %d compactions",
					st.StreamingCompactions, st.FallbackCompactions, st.Compactions)
			}
			if fallback && st.StreamingCompactions != 0 {
				t.Fatalf("forced fallback still ran %d streaming compactions", st.StreamingCompactions)
			}
			if !fallback && st.FallbackCompactions != 0 {
				t.Fatalf("happy path fell back %d times: %+v", st.FallbackCompactions, st)
			}
			compareStore(t, s, all, nil, rng, true)
		})
	}
}

// TestStoreStreamingCompactionCanonicalBytes: a segment produced by the
// streaming compactor is byte-identical to EncodeIndexed of a batch build
// over the compacted tuples — compaction re-canonicalizes, so repeated
// merge generations can never degrade the structure.
func TestStoreStreamingCompactionCanonicalBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dir := t.TempDir()
	s, err := Open(dir, Options{
		Dims:               testDims,
		SealTuples:         30,
		CompactFanout:      3,
		DisableAutoCompact: true,
		NoSync:             true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var all []dwarf.Tuple
	for i := 0; i < 3; i++ {
		batch := randTuples(rng, 30)
		if err := s.Append(batch); err != nil {
			t.Fatal(err)
		}
		all = append(all, batch...)
		if err := s.Seal(); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := s.Compact(); err != nil || n != 1 {
		t.Fatalf("Compact = %d, %v; want exactly 1", n, err)
	}
	st := s.Stats()
	if len(st.Segments) != 1 {
		t.Fatalf("want one merged segment, have %+v", st.Segments)
	}
	got, err := os.ReadFile(filepath.Join(dir, st.Segments[0].File))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := dwarf.New(testDims, all)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := ref.EncodeIndexed(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("compacted segment is not the canonical batch encoding: %d vs %d bytes",
			len(got), want.Len())
	}
}

func nan() float64 {
	var z float64
	return z / z
}
