//go:build unix

package cubestore

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// A store directory admits exactly one writer process: two stores sealing
// and compacting the same directory would delete each other's live WAL
// generations and clobber the manifest. The LOCK file is flock'd exclusive
// for the store's lifetime; the kernel drops the lock when the process
// dies, so a crash never leaves the directory stuck.

const lockName = "LOCK"

type dirLock struct{ f *os.File }

func acquireDirLock(dir string) (*dirLock, error) {
	f, err := os.OpenFile(filepath.Join(dir, lockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("cubestore: %s is already open in another process (flock: %w)", dir, err)
	}
	return &dirLock{f: f}, nil
}

// release drops the lock (closing the descriptor releases the flock).
func (l *dirLock) release() {
	if l != nil && l.f != nil {
		l.f.Close()
	}
}
