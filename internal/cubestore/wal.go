package cubestore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/dwarf"
)

// The write-ahead log makes Append durable before the memtable sees the
// batch. Each WAL generation is one append-only file, wal-<gen>.log; a seal
// rotates to a fresh generation and the manifest's WALGen records the lowest
// generation still covering unsealed tuples. Record layout (all little
// endian):
//
//	crc u32 (over payload) | len u32 | payload
//	payload: count uvarint, then per tuple:
//	    ndims uvarint | ndims × (klen uvarint | key bytes) | measure f64
//
// A torn or CRC-corrupt tail record ends replay — those tuples were never
// acknowledged. Corruption inside an intact CRC frame is reported as
// ErrCorruptWAL: the frame was acknowledged, so silently dropping it would
// lose data.

// ErrCorruptWAL reports a damaged record body inside a CRC-valid frame.
var ErrCorruptWAL = errors.New("cubestore: corrupt WAL record")

// ErrBatchTooLarge rejects an Append whose encoded WAL record would exceed
// maxWALRecord — replay would discard such a record as garbage, so writing
// it would break the "no acked tuple lost" invariant. Split the batch.
var ErrBatchTooLarge = errors.New("cubestore: batch exceeds the 1 GiB WAL record limit")

const (
	walPrefix = "wal-"
	walSuffix = ".log"
	// maxWALRecord bounds one record's payload; larger lengths are treated
	// as a torn tail.
	maxWALRecord = 1 << 30
)

func walPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016d%s", walPrefix, gen, walSuffix))
}

// walGenOf parses the generation out of a WAL file name.
func walGenOf(name string) (uint64, bool) {
	if !strings.HasPrefix(name, walPrefix) || !strings.HasSuffix(name, walSuffix) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, walPrefix), walSuffix)
	gen, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return gen, true
}

// listWALGens returns the generations present in dir, ascending.
func listWALGens(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var gens []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if gen, ok := walGenOf(e.Name()); ok {
			gens = append(gens, gen)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

// wal is one open generation of the log.
type wal struct {
	gen   uint64
	path  string
	file  *os.File
	w     *bufio.Writer
	bytes int64
}

// openWAL opens (creating if needed) the log file for gen and positions
// appends at its end.
func openWAL(dir string, gen uint64) (*wal, error) {
	path := walPath(dir, gen)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &wal{gen: gen, path: path, file: f, w: bufio.NewWriterSize(f, 1<<16), bytes: st.Size()}, nil
}

// walRecPool recycles the per-append record buffer: the WAL frames one
// record per Append, and without pooling every frame allocates (and grows)
// a fresh payload slice on the hot ingest path.
var walRecPool = sync.Pool{New: func() any { return new([]byte) }}

// appendWALRecord frames one batch as crc|len|payload into buf (reusing its
// capacity) and returns the grown slice.
func appendWALRecord(buf []byte, tuples []dwarf.Tuple) []byte {
	rec := append(buf[:0], 0, 0, 0, 0, 0, 0, 0, 0) // crc + len placeholders
	rec = binary.AppendUvarint(rec, uint64(len(tuples)))
	for _, t := range tuples {
		rec = binary.AppendUvarint(rec, uint64(len(t.Dims)))
		for _, k := range t.Dims {
			rec = binary.AppendUvarint(rec, uint64(len(k)))
			rec = append(rec, k...)
		}
		rec = binary.LittleEndian.AppendUint64(rec, math.Float64bits(t.Measure))
	}
	payload := rec[8:]
	binary.LittleEndian.PutUint32(rec[0:], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint32(rec[4:], uint32(len(payload)))
	return rec
}

// writeRecord appends one framed record to the log buffer. It is the write
// half of a group commit: the committer writes every queued record, then
// issues a single sync for the whole group.
func (l *wal) writeRecord(rec []byte) error {
	if _, err := l.w.Write(rec); err != nil {
		return err
	}
	l.bytes += int64(len(rec))
	return nil
}

// sync makes every written record durable: buffered bytes are flushed and the
// file fsynced. One call covers every record written since the last sync —
// the whole point of group commit.
func (l *wal) sync() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	return l.file.Sync()
}

// close flushes buffered records and closes the file.
func (l *wal) close() error {
	flushErr := l.w.Flush()
	closeErr := l.file.Close()
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

// abandon closes the file handle without flushing — the crash path, used by
// tests to drop a store as a real crash would.
func (l *wal) abandon() { l.file.Close() }

// replayWAL streams every intact record's batch to fn, in order. A crash
// can only tear the LAST record (the file is append-only), so a short or
// CRC-corrupt frame that reaches end-of-file ends replay cleanly — that
// batch was never acknowledged. A corrupt frame with more data after it is
// mid-file corruption of acknowledged records and fails loudly with
// ErrCorruptWAL: dropping the records behind it would silently lose acked
// tuples. (A corrupted length field loses record framing, so the bytes it
// implausibly points past EOF with are likewise only accepted as a tail.)
func replayWAL(path string, fn func(tuples []dwarf.Tuple) error) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	atEOF := func() bool {
		_, err := r.Peek(1)
		return err != nil
	}
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil // clean EOF or torn header
		}
		wantCRC := binary.LittleEndian.Uint32(hdr[0:])
		plen := binary.LittleEndian.Uint32(hdr[4:])
		if plen > maxWALRecord {
			if atEOF() {
				return nil // garbage tail
			}
			return fmt.Errorf("%w: implausible record length %d mid-file", ErrCorruptWAL, plen)
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil // torn record at end-of-file
		}
		if crc32.ChecksumIEEE(payload) != wantCRC {
			if atEOF() {
				return nil // corrupt tail: never acknowledged
			}
			return fmt.Errorf("%w: checksum mismatch mid-file", ErrCorruptWAL)
		}
		tuples, err := decodeWALPayload(payload)
		if err != nil {
			return err
		}
		if err := fn(tuples); err != nil {
			return err
		}
	}
}

func decodeWALPayload(payload []byte) ([]dwarf.Tuple, error) {
	count, n := binary.Uvarint(payload)
	// A tuple encodes to at least 10 bytes (ndims, one 1-byte key length,
	// the 8-byte measure), which bounds count — and therefore the slice
	// allocation — by the payload size; a corrupt CRC-valid frame yields a
	// clean error, never an OOM-sized make.
	if n <= 0 || count > uint64(len(payload))/10+1 {
		return nil, fmt.Errorf("%w: bad tuple count", ErrCorruptWAL)
	}
	payload = payload[n:]
	tuples := make([]dwarf.Tuple, 0, min(count, 1<<16))
	for i := uint64(0); i < count; i++ {
		ndims, n := binary.Uvarint(payload)
		// Each dimension needs at least its 1-byte key length.
		if n <= 0 || ndims > uint64(len(payload)-n) {
			return nil, fmt.Errorf("%w: bad dim count", ErrCorruptWAL)
		}
		payload = payload[n:]
		// Grow dims as keys actually parse rather than trusting the claimed
		// ndims with one up-front allocation.
		dims := make([]string, 0, min(ndims, 64))
		for d := uint64(0); d < ndims; d++ {
			klen, n := binary.Uvarint(payload)
			if n <= 0 || klen > uint64(len(payload)-n) {
				return nil, fmt.Errorf("%w: bad key", ErrCorruptWAL)
			}
			dims = append(dims, string(payload[n:n+int(klen)]))
			payload = payload[n+int(klen):]
		}
		if len(payload) < 8 {
			return nil, fmt.Errorf("%w: truncated measure", ErrCorruptWAL)
		}
		measure := math.Float64frombits(binary.LittleEndian.Uint64(payload))
		payload = payload[8:]
		tuples = append(tuples, dwarf.Tuple{Dims: dims, Measure: measure})
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorruptWAL, len(payload))
	}
	return tuples, nil
}

// fsyncDir flushes directory metadata (file creations, renames, deletions)
// so the recovery invariants hold across power loss, not just process death.
func fsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
