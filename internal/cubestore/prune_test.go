package cubestore

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/dwarf"
)

// Zone-map pruning tests. The invariant under test: pruning changes which
// sealed segments a query fans out to, never the answer — a store with
// NoPrune set is the oracle, and every shape must match it bit for bit.

var pruneDims = []string{"Day", "Kind"}

// day formats a June 2015 day number at the fixture's key grain.
func day(n int) string { return fmt.Sprintf("2015-06-%02d", n) }

// pruneFixture builds a store with one sealed segment per day 1..6 (three
// kinds each) plus one unsealed live tuple, with compaction held off so
// the day slicing survives. Day-ranged queries then have provably
// non-overlapping segments to drop.
func pruneFixture(t *testing.T, noPrune bool) *Store {
	t.Helper()
	store, err := Open(t.TempDir(), Options{
		Dims: pruneDims, NoSync: true, DisableAutoCompact: true,
		SealTuples: 1 << 20, NoPrune: noPrune,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	for d := 1; d <= 6; d++ {
		var tuples []dwarf.Tuple
		for i, kind := range []string{"air", "bike", "noise"} {
			tuples = append(tuples, dwarf.Tuple{
				Dims: []string{day(d), kind}, Measure: float64(d*10 + i),
			})
		}
		if err := store.Append(tuples); err != nil {
			t.Fatal(err)
		}
		if err := store.Seal(); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Append([]dwarf.Tuple{{Dims: []string{day(7), "bike"}, Measure: 99}}); err != nil {
		t.Fatal(err)
	}
	return store
}

// pruneBattery runs the selective query battery over both stores and
// requires identical answers everywhere. Selector cases deliberately cover
// the planner's edges: a single key per dimension, ranges touching one /
// several / zero segments, an inverted (empty-intersection) range, keys
// straddling segment boundaries, and the live-only day.
func pruneBattery(t *testing.T, pruned, oracle *Store) {
	t.Helper()
	selCases := [][]dwarf.Selector{
		{dwarf.SelectKeys(day(3)), dwarf.SelectKeys("bike")},
		{dwarf.SelectRange(day(2), day(4)), {}},
		{dwarf.SelectRange(day(5), day(5)), dwarf.SelectKeys("air", "noise")},
		{dwarf.SelectRange(day(8), day(9)), {}},
		{dwarf.SelectRange(day(4), day(2)), {}},
		{dwarf.SelectKeys(day(1), day(6)), {}},
		{dwarf.SelectKeys(day(7)), {}},
		{{}, dwarf.SelectKeys("bike")},
		{{}, {}},
	}
	for i, sels := range selCases {
		wantR, err1 := oracle.Range(sels)
		gotR, err2 := pruned.Range(sels)
		if err1 != nil || err2 != nil {
			t.Fatalf("case %d Range: oracle err=%v pruned err=%v", i, err1, err2)
		}
		if gotR != wantR {
			t.Fatalf("case %d Range: pruned %+v, oracle %+v", i, gotR, wantR)
		}
		for dim := range pruneDims {
			wantG, err1 := oracle.GroupBy(dim, sels)
			gotG, err2 := pruned.GroupBy(dim, sels)
			if err1 != nil || err2 != nil {
				t.Fatalf("case %d GroupBy(%d): oracle err=%v pruned err=%v", i, dim, err1, err2)
			}
			if !reflect.DeepEqual(gotG, wantG) {
				t.Fatalf("case %d GroupBy(%d): pruned %v, oracle %v", i, dim, gotG, wantG)
			}
		}
		wantP, err1 := oracle.Pivot([]int{0, 1}, sels)
		gotP, err2 := pruned.Pivot([]int{0, 1}, sels)
		if err1 != nil || err2 != nil {
			t.Fatalf("case %d Pivot: oracle err=%v pruned err=%v", i, err1, err2)
		}
		if !reflect.DeepEqual(gotP, wantP) {
			t.Fatalf("case %d Pivot: pruned %v, oracle %v", i, gotP, wantP)
		}
		wantK, err1 := oracle.TopK(1, sels, dwarf.TopKSpec{K: 2, By: dwarf.BySum})
		gotK, err2 := pruned.TopK(1, sels, dwarf.TopKSpec{K: 2, By: dwarf.BySum})
		if err1 != nil || err2 != nil {
			t.Fatalf("case %d TopK: oracle err=%v pruned err=%v", i, err1, err2)
		}
		if !reflect.DeepEqual(gotK, wantK) {
			t.Fatalf("case %d TopK: pruned %v, oracle %v", i, gotK, wantK)
		}
	}
	for _, keys := range [][]string{
		{day(3), "bike"}, {day(7), "bike"}, {day(9), "bike"},
		{day(2), dwarf.All}, {dwarf.All, "air"}, {dwarf.All, dwarf.All},
	} {
		want, err1 := oracle.Point(keys...)
		got, err2 := pruned.Point(keys...)
		if err1 != nil || err2 != nil {
			t.Fatalf("Point(%v): oracle err=%v pruned err=%v", keys, err1, err2)
		}
		if got != want {
			t.Fatalf("Point(%v): pruned %+v, oracle %+v", keys, got, want)
		}
	}
}

// TestPruneDifferential is the core gate: the pruned store equals the
// NoPrune oracle on every shape, while its counters prove segments were
// actually dropped and the oracle's prove none were.
func TestPruneDifferential(t *testing.T) {
	pruned, oracle := pruneFixture(t, false), pruneFixture(t, true)
	pruneBattery(t, pruned, oracle)

	ps, os := pruned.Stats(), oracle.Stats()
	if ps.SegmentsPruned == 0 {
		t.Fatal("selective battery pruned nothing")
	}
	if os.SegmentsPruned != 0 {
		t.Fatalf("NoPrune store pruned %d segments", os.SegmentsPruned)
	}
	if ps.SegmentsScanned >= os.SegmentsScanned {
		t.Fatalf("pruned store scanned %d segments, oracle %d",
			ps.SegmentsScanned, os.SegmentsScanned)
	}

	// An inverted range admits no segment at all, and a single bound day
	// admits exactly one of six — pin the exact counter deltas.
	before := pruned.Stats()
	if _, err := pruned.Range([]dwarf.Selector{dwarf.SelectRange(day(4), day(2)), {}}); err != nil {
		t.Fatal(err)
	}
	after := pruned.Stats()
	if sc, pr := after.SegmentsScanned-before.SegmentsScanned, after.SegmentsPruned-before.SegmentsPruned; sc != 0 || pr != 6 {
		t.Fatalf("inverted range scanned %d pruned %d, want 0/6", sc, pr)
	}
	before = after
	if _, err := pruned.Range([]dwarf.Selector{dwarf.SelectKeys(day(3)), {}}); err != nil {
		t.Fatal(err)
	}
	after = pruned.Stats()
	if sc, pr := after.SegmentsScanned-before.SegmentsScanned, after.SegmentsPruned-before.SegmentsPruned; sc != 1 || pr != 5 {
		t.Fatalf("single day scanned %d pruned %d, want 1/5", sc, pr)
	}
}

// stripMetaTrailer rewrites a segment file without its v3 zone-map section,
// reproducing a file sealed before zone maps existed (the v3 section is a
// pure suffix after the v2 offset trailer).
func stripMetaTrailer(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	const magic = "DWRFMET3"
	if len(data) < 16 || string(data[len(data)-len(magic):]) != magic {
		t.Fatalf("%s has no v3 meta trailer", path)
	}
	bodyLen := int(binary.LittleEndian.Uint32(data[len(data)-12 : len(data)-8]))
	if err := os.WriteFile(path, data[:len(data)-16-bodyLen], 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestPruneLegacySegmentConservative strips one segment down to pre-v3
// bytes and deletes its manifest zones: the reopened store must scan that
// segment unconditionally (never prune it) while still pruning its
// zone-mapped neighbors — and answers stay equal to the NoPrune oracle.
func TestPruneLegacySegmentConservative(t *testing.T) {
	dir := t.TempDir()
	open := func(noPrune bool) *Store {
		s, err := Open(dir, Options{
			Dims: pruneDims, NoSync: true, DisableAutoCompact: true,
			SealTuples: 1 << 20, NoPrune: noPrune,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	store := open(false)
	for d := 1; d <= 2; d++ {
		if err := store.Append([]dwarf.Tuple{{Dims: []string{day(d), "bike"}, Measure: float64(d)}}); err != nil {
			t.Fatal(err)
		}
		if err := store.Seal(); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Age the day-2 segment: no zones in the manifest, no v3 section in
	// the file.
	m, ok, err := loadManifest(dir)
	if err != nil || !ok {
		t.Fatalf("manifest: ok=%v err=%v", ok, err)
	}
	if len(m.Segments) != 2 {
		t.Fatalf("want 2 segments, have %d", len(m.Segments))
	}
	legacy := &m.Segments[1]
	if len(legacy.Zones) != len(pruneDims) {
		t.Fatalf("sealed segment missing manifest zones: %+v", legacy)
	}
	legacy.Zones = nil
	stripMetaTrailer(t, filepath.Join(dir, legacy.File))
	if err := writeManifest(dir, m); err != nil {
		t.Fatal(err)
	}

	store = open(false)
	defer store.Close()

	// Selecting day 1 scans the mapped day-1 segment AND the legacy one
	// (conservative: no zones means no proof of non-overlap); selecting
	// day 2 prunes only the mapped segment.
	before := store.Stats()
	got, err := store.Range([]dwarf.Selector{dwarf.SelectKeys(day(1)), {}})
	if err != nil {
		t.Fatal(err)
	}
	after := store.Stats()
	if sc, pr := after.SegmentsScanned-before.SegmentsScanned, after.SegmentsPruned-before.SegmentsPruned; sc != 2 || pr != 0 {
		t.Fatalf("day-1 query scanned %d pruned %d, want 2/0", sc, pr)
	}
	if got.Count != 1 || got.Sum != 1 {
		t.Fatalf("day-1 answer: %+v", got)
	}
	before = after
	got, err = store.Range([]dwarf.Selector{dwarf.SelectKeys(day(2)), {}})
	if err != nil {
		t.Fatal(err)
	}
	after = store.Stats()
	if sc, pr := after.SegmentsScanned-before.SegmentsScanned, after.SegmentsPruned-before.SegmentsPruned; sc != 1 || pr != 1 {
		t.Fatalf("day-2 query scanned %d pruned %d, want 1/1", sc, pr)
	}
	if got.Count != 1 || got.Sum != 2 {
		t.Fatalf("day-2 answer: %+v", got)
	}
}

// TestPruneUnderMaintenance interleaves day-ranged queries with appends,
// seals, explicit compactions and (via Rollups + cache) rollup swaps, under
// the race detector: pruning must never observe a torn segment set, and the
// settled store must still match a NoPrune oracle over the same tuples.
func TestPruneUnderMaintenance(t *testing.T) {
	store, err := Open(t.TempDir(), Options{
		Dims: pruneDims, NoSync: true, DisableAutoCompact: true,
		SealTuples: 1 << 20, CacheBytes: 1 << 20,
		Rollups: [][]string{{"Kind"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	kinds := []string{"air", "bike", "noise"}
	var mu sync.Mutex
	var all []dwarf.Tuple
	appendDay := func(d int) {
		var tuples []dwarf.Tuple
		for i, kind := range kinds {
			tuples = append(tuples, dwarf.Tuple{
				Dims: []string{day(d%28 + 1), kind}, Measure: float64(d + i),
			})
		}
		if err := store.Append(tuples); err != nil {
			t.Error(err)
			return
		}
		mu.Lock()
		all = append(all, tuples...)
		mu.Unlock()
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				lo := rng.Intn(28) + 1
				sels := []dwarf.Selector{dwarf.SelectRange(day(lo), day(lo+2)), {}}
				if rng.Intn(2) == 0 {
					if _, err := store.Range(sels); err != nil {
						t.Error(err)
						return
					}
				} else if _, err := store.GroupBy(1, make([]dwarf.Selector, 2)); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(r))
	}
	for d := 0; d < 40; d++ {
		appendDay(d)
		if d%3 == 2 {
			if err := store.Seal(); err != nil {
				t.Fatal(err)
			}
		}
		if d%10 == 9 {
			if _, err := store.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	time.Sleep(10 * time.Millisecond) // let any in-flight rollup swap land

	oracle := pruneOracle(t, all)
	sels := []dwarf.Selector{{}, {}}
	want, err1 := oracle.GroupBy(0, sels)
	got, err2 := store.GroupBy(0, sels)
	if err1 != nil || err2 != nil {
		t.Fatalf("settled GroupBy: oracle err=%v store err=%v", err1, err2)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("settled store diverged:\nstore  %v\noracle %v", got, want)
	}
	pruneBattery(t, store, oracle)
}

// pruneOracle is a NoPrune store holding exactly the given tuples.
func pruneOracle(t *testing.T, tuples []dwarf.Tuple) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), Options{
		Dims: pruneDims, NoSync: true, DisableAutoCompact: true,
		SealTuples: 1 << 20, NoPrune: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	if err := s.Append(tuples); err != nil {
		t.Fatal(err)
	}
	return s
}
