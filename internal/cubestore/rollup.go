package cubestore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/dwarf"
)

// Rollup segments are pre-aggregated cubes over a subset of the store's
// dimensions, maintained by the compactor: after every Compact settles the
// segment set, each configured subset is rebuilt (one kernel Pivot per
// sealed segment, partials merged, the result re-encoded through the
// normal builder) unless its manifest entry already covers exactly the
// live segments. A rollup answers a grouped query only while every file it
// covers is still live — a compaction that replaced one would otherwise
// double-count its tuples — so the planner checks Covers against the
// snapshot and falls back to the plain fan-out when it no longer holds.
//
// Commit protocol mirrors seals: rollup file first (an orphan until
// listed), then the manifest swap under mu, then the replaced file is
// deleted. A crash at any point leaves either the old rollup or the new
// one; removeOrphans reclaims half-written files at Open.

// rollupSpec is one normalized Options.Rollups entry: the surviving
// dimension names in store order plus their store indices.
type rollupSpec struct {
	names []string
	idx   []int
}

// rollupSeg is one live rollup segment with its planner lookup tables.
type rollupSeg struct {
	meta rollupMeta
	data []byte
	view *dwarf.CubeView
	// dimIdx maps rollup dimension position -> store dimension index;
	// pos maps store dimension index -> rollup position (-1 if dropped).
	dimIdx []int
	pos    []int
	// zones are the rollup cube's zone maps over its own dimension order
	// (manifest copy, else the view's; nil admits everything).
	zones []dwarf.ZoneMap
}

func dimsKey(names []string) string { return strings.Join(names, "\x00") }

// normalizeRollupSpecs validates Options.Rollups against the store's
// dimension list and normalizes each subset to store dimension order.
func normalizeRollupSpecs(specs [][]string, dims []string) ([]rollupSpec, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	at := make(map[string]int, len(dims))
	for i, d := range dims {
		at[d] = i
	}
	out := make([]rollupSpec, 0, len(specs))
	seen := make(map[string]bool, len(specs))
	for _, names := range specs {
		if len(names) == 0 {
			return nil, fmt.Errorf("cubestore: empty rollup dimension list")
		}
		idx := make([]int, 0, len(names))
		have := make(map[int]bool, len(names))
		for _, n := range names {
			i, ok := at[n]
			if !ok {
				return nil, fmt.Errorf("cubestore: rollup dimension %q not in store dims %v", n, dims)
			}
			if !have[i] {
				have[i] = true
				idx = append(idx, i)
			}
		}
		if len(idx) == len(dims) {
			return nil, fmt.Errorf("cubestore: rollup %v keeps every dimension — it would duplicate the segments", names)
		}
		sort.Ints(idx)
		ordered := make([]string, len(idx))
		for j, i := range idx {
			ordered[j] = dims[i]
		}
		k := dimsKey(ordered)
		if seen[k] {
			return nil, fmt.Errorf("cubestore: duplicate rollup over %v", ordered)
		}
		seen[k] = true
		out = append(out, rollupSpec{names: ordered, idx: idx})
	}
	return out, nil
}

// newRollupSeg builds the planner lookup tables for one rollup.
func newRollupSeg(meta rollupMeta, data []byte, view *dwarf.CubeView, dims []string) (*rollupSeg, error) {
	at := make(map[string]int, len(dims))
	for i, d := range dims {
		at[d] = i
	}
	r := &rollupSeg{meta: meta, data: data, view: view, pos: make([]int, len(dims))}
	r.zones = meta.Zones
	if len(r.zones) != len(meta.Dims) {
		r.zones = nil
		if view != nil {
			r.zones = view.ZoneMaps()
		}
	}
	for i := range r.pos {
		r.pos[i] = -1
	}
	for j, n := range meta.Dims {
		i, ok := at[n]
		if !ok {
			return nil, fmt.Errorf("cubestore: rollup %s has dimension %q not in store dims %v", meta.File, n, dims)
		}
		r.dimIdx = append(r.dimIdx, i)
		r.pos[i] = j
	}
	return r, nil
}

// openRollups loads every manifest-listed rollup. Like segments, a listed
// rollup that is missing or corrupt fails Open loudly: the manifest is the
// root of truth, and silently dropping derived state would hide damage.
func (s *Store) openRollups() error {
	for _, m := range s.man.Rollups {
		data, err := os.ReadFile(filepath.Join(s.dir, m.File))
		if err != nil {
			return fmt.Errorf("cubestore: manifest lists %s: %w", m.File, err)
		}
		view, err := dwarf.OpenView(data)
		if err != nil {
			return fmt.Errorf("cubestore: rollup %s: %w", m.File, err)
		}
		r, err := newRollupSeg(m, data, view, s.dims)
		if err != nil {
			return err
		}
		s.rollups = append(s.rollups, r)
	}
	return nil
}

// canAnswer reports whether the rollup can answer a query grouping by the
// store dimensions in grouped under sels: every grouped dimension must
// survive in the rollup, and every aggregated-away dimension must be
// unrestricted — the rollup only keeps those dimensions' ALL roll-up.
func (r *rollupSeg) canAnswer(grouped []int, sels []dwarf.Selector) bool {
	for _, d := range grouped {
		if r.pos[d] < 0 {
			return false
		}
	}
	for d := range sels {
		if r.pos[d] >= 0 {
			continue
		}
		if sels[d].HasRange || len(sels[d].Keys) > 0 {
			return false
		}
	}
	return true
}

// chooseRollup returns the smallest rollup able to answer a query grouping
// by grouped under sels whose cover is still a subset of the live segment
// set, or nil when the plain fan-out must run.
func (st *storeState) chooseRollup(grouped []int, sels []dwarf.Selector) *rollupSeg {
	if len(st.rollups) == 0 {
		return nil
	}
	var liveFiles map[string]bool
	var best *rollupSeg
	for _, r := range st.rollups {
		if len(r.meta.Covers) == 0 || !r.canAnswer(grouped, sels) {
			continue
		}
		if best != nil && best.meta.Tuples <= r.meta.Tuples {
			continue
		}
		if liveFiles == nil {
			liveFiles = make(map[string]bool, len(st.segs))
			for _, seg := range st.segs {
				liveFiles[seg.meta.File] = true
			}
		}
		covered := true
		for _, f := range r.meta.Covers {
			if !liveFiles[f] {
				covered = false
				break
			}
		}
		if covered {
			best = r
		}
	}
	return best
}

func sameFiles(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// maintainRollups brings rollup segments in line with the current segment
// set: configured subsets whose cover went stale are rebuilt, and rollups
// that are neither configured nor covering (reopened with different
// Options.Rollups, then outrun by compaction) are dropped. Callers hold
// compactMu — the segment set can only grow (seals) while this runs, so a
// committed cover stays a subset of the live set.
func (s *Store) maintainRollups() error {
	if len(s.rollupSpecs) == 0 && len(s.rollups) == 0 {
		return nil
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	segs := append([]*segment(nil), s.segs...)
	existing := make(map[string]*rollupSeg, len(s.rollups))
	for _, r := range s.rollups {
		existing[dimsKey(r.meta.Dims)] = r
	}
	s.mu.Unlock()
	cover := make([]string, len(segs))
	liveFiles := make(map[string]bool, len(segs))
	for i, seg := range segs {
		cover[i] = seg.meta.File
		liveFiles[seg.meta.File] = true
	}
	configured := make(map[string]bool, len(s.rollupSpecs))
	for _, spec := range s.rollupSpecs {
		k := dimsKey(spec.names)
		configured[k] = true
		old := existing[k]
		if old != nil && sameFiles(old.meta.Covers, cover) {
			continue
		}
		if len(segs) == 0 {
			// Nothing to summarize; drop a leftover entry rather than
			// committing a rollup that covers nothing.
			if old != nil {
				if err := s.removeRollup(old); err != nil {
					return err
				}
			}
			continue
		}
		if err := s.swapRollup(spec, segs, cover); err != nil {
			return err
		}
	}
	for k, r := range existing {
		if configured[k] {
			continue
		}
		covered := len(r.meta.Covers) > 0
		for _, f := range r.meta.Covers {
			if !liveFiles[f] {
				covered = false
				break
			}
		}
		if !covered {
			if err := s.removeRollup(r); err != nil {
				return err
			}
		}
	}
	return nil
}

// swapRollup builds the rollup cube for spec over segs and commits it,
// replacing any previous rollup over the same subset. The expensive part
// runs without mu; only the id reservation and the manifest swap lock.
func (s *Store) swapRollup(spec rollupSpec, segs []*segment, cover []string) error {
	// One kernel Pivot per segment under all-ALL selectors — exactly the
	// fan-out a RollUp over the sealed data would run — then the merged
	// rows feed the normal builder as pre-aggregated facts, preserving
	// counts and min/max through the rebuild.
	sels := make([]dwarf.Selector, len(s.dims))
	parts := make([][]dwarf.PivotGroup, len(segs))
	for i, seg := range segs {
		rows, err := seg.view.Pivot(spec.idx, sels)
		if err != nil {
			return fmt.Errorf("cubestore: rollup over %s: %w", seg.meta.File, err)
		}
		parts[i] = rows
	}
	rows := dwarf.MergePivotGroups(parts...)
	tuples := make([]dwarf.AggTuple, len(rows))
	for i := range rows {
		tuples[i] = dwarf.AggTuple{Dims: rows[i].Keys, Agg: rows[i].Agg}
	}
	cube, err := dwarf.NewFromAggregates(spec.names, tuples, s.opts.cubeOptions()...)
	if err != nil {
		return err
	}
	encoded, err := encodeCube(cube)
	if err != nil {
		return err
	}
	view, err := dwarf.OpenViewTrusted(encoded)
	if err != nil {
		return err
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	// Reserve the file id like compactOnce does, so a racing seal cannot
	// take the same name; the reservation persists with whichever manifest
	// swap commits first.
	id := s.man.NextSegID
	s.man.NextSegID++
	s.mu.Unlock()
	meta := rollupMeta{File: rollupFileName(id), Dims: spec.names, Covers: cover, Tuples: len(rows), Zones: view.ZoneMaps()}
	if err := writeSegmentFile(s.dir, meta.File, encoded); err != nil {
		return err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	r, err := newRollupSeg(meta, encoded, view, s.dims)
	if err != nil {
		return err
	}
	newMan := s.man.clone()
	if newMan.NextSegID <= id {
		newMan.NextSegID = id + 1
	}
	newMan.Generation = s.gen.Load() + 1
	replaced := ""
	out := newMan.Rollups[:0]
	for _, m := range newMan.Rollups {
		if dimsKey(m.Dims) == dimsKey(spec.names) {
			replaced = m.File
			continue
		}
		out = append(out, m)
	}
	newMan.Rollups = append(out, meta)
	if err := writeManifest(s.dir, newMan); err != nil {
		return err
	}
	s.man = newMan
	newRollups := make([]*rollupSeg, 0, len(s.rollups)+1)
	for _, have := range s.rollups {
		if have.meta.File != replaced {
			newRollups = append(newRollups, have)
		}
	}
	s.rollups = append(newRollups, r)
	if replaced != "" {
		os.Remove(filepath.Join(s.dir, replaced))
	}
	// Surfaces a failed sync of the replaced-rollup deletion in Stats; a
	// resurrected file is re-deleted as an orphan on the next open.
	s.noteDirSync(fsyncDir(s.dir))
	s.publish()
	return nil
}

// removeRollup drops one rollup from the manifest and disk.
func (s *Store) removeRollup(r *rollupSeg) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	newMan := s.man.clone()
	found := false
	out := newMan.Rollups[:0]
	for _, m := range newMan.Rollups {
		if m.File == r.meta.File {
			found = true
			continue
		}
		out = append(out, m)
	}
	if !found {
		return nil
	}
	if len(out) == 0 {
		out = nil
	}
	newMan.Rollups = out
	newMan.Generation = s.gen.Load() + 1
	if err := writeManifest(s.dir, newMan); err != nil {
		return err
	}
	s.man = newMan
	keep := make([]*rollupSeg, 0, len(s.rollups))
	for _, have := range s.rollups {
		if have.meta.File != r.meta.File {
			keep = append(keep, have)
		}
	}
	s.rollups = keep
	os.Remove(filepath.Join(s.dir, r.meta.File))
	s.noteDirSync(fsyncDir(s.dir))
	s.publish()
	return nil
}
