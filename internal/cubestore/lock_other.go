//go:build !unix

package cubestore

// Platforms without flock get no single-writer guard; the LOCK file
// convention still reserves the name so the unix build's lock is honored
// when the directory moves between systems.

const lockName = "LOCK"

type dirLock struct{}

func acquireDirLock(dir string) (*dirLock, error) { return &dirLock{}, nil }

func (l *dirLock) release() {}
