package cubestore

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/dwarf"
	"repro/internal/query"
)

// Cache/rollup differential suite: a store serving through the planned
// path (hot-result cache, per-segment partials, rollup segments) must
// answer every query shape bit-identically to the plain fan-out — which
// compareStore already holds equal to a batch cube — across arbitrary
// interleavings of Append/Seal/Compact, cold and warm.

func cacheTestOptions(workers int) Options {
	return Options{
		Dims:               testDims,
		SealTuples:         96,
		ChunkTuples:        7,
		CompactFanout:      3,
		DisableAutoCompact: true,
		NoSync:             true,
		Workers:            workers,
		CacheBytes:         4 << 20,
		Rollups:            [][]string{{"A"}, {"B", "C"}},
	}
}

func TestStoreCacheDifferential(t *testing.T) {
	for _, workers := range []int{1, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(7000 + workers)))
			dir := t.TempDir()
			s, err := Open(dir, cacheTestOptions(workers))
			if err != nil {
				t.Fatal(err)
			}
			var all []dwarf.Tuple
			for step := 0; step < 60; step++ {
				switch rng.Intn(10) {
				case 0:
					if err := s.Seal(); err != nil {
						t.Fatal(err)
					}
				case 1:
					if _, err := s.Compact(); err != nil {
						t.Fatal(err)
					}
				default:
					batch := randTuples(rng, rng.Intn(25)+1)
					if err := s.Append(batch); err != nil {
						t.Fatal(err)
					}
					all = append(all, batch...)
				}
				if step%9 == 0 {
					// Same seed twice: the second pass replays the identical
					// query battery, now answered from the result cache and
					// cached partials, and must stay bit-identical.
					seed := rng.Int63()
					compareStore(t, s, all, nil, rand.New(rand.NewSource(seed)), false)
					compareStore(t, s, all, nil, rand.New(rand.NewSource(seed)), false)
				}
			}
			seed := rng.Int63()
			compareStore(t, s, all, nil, rand.New(rand.NewSource(seed)), true)
			compareStore(t, s, all, nil, rand.New(rand.NewSource(seed)), true)
			st := s.Stats()
			if st.CacheHits == 0 || st.CachePartialHits == 0 {
				t.Fatalf("warm replay never hit the cache: %+v", st)
			}
			if st.Generation == 0 {
				t.Fatal("generation never advanced")
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			// Reopen with the same cache/rollup config: manifest rollups
			// reload and the planned path still matches the batch cube.
			s2, err := Open(dir, cacheTestOptions(workers))
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			seed = rng.Int63()
			compareStore(t, s2, all, nil, rand.New(rand.NewSource(seed)), true)
			compareStore(t, s2, all, nil, rand.New(rand.NewSource(seed)), true)
		})
	}
}

// TestStoreCacheNoStaleReads drives every kind of visible-state transition
// between repeated identical queries: each transition must bump the
// generation, and the re-issued query must reflect the new state rather
// than the cached answer.
func TestStoreCacheNoStaleReads(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s, err := Open(t.TempDir(), cacheTestOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	allSels := []dwarf.Selector{dwarf.SelectAll(), dwarf.SelectAll(), dwarf.SelectAll()}
	var all []dwarf.Tuple
	check := func(label string) {
		t.Helper()
		ref, err := dwarf.New(testDims, all)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.GroupBy(0, allSels)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		want, _ := ref.GroupBy(0, allSels)
		if len(got) != len(want) {
			t.Fatalf("%s: %d groups, want %d", label, len(got), len(want))
		}
		for k, a := range want {
			if !got[k].Equal(a) {
				t.Fatalf("%s key %q: store=%+v batch=%+v", label, k, got[k], a)
			}
		}
	}

	batch := randTuples(rng, 50)
	if err := s.Append(batch); err != nil {
		t.Fatal(err)
	}
	all = append(all, batch...)
	check("initial")
	hits := s.Stats().CacheHits
	check("repeat")
	if got := s.Stats().CacheHits; got != hits+1 {
		t.Fatalf("identical repeat query: CacheHits %d -> %d, want a hit", hits, got)
	}

	mutate := []struct {
		name string
		do   func() error
	}{
		{"append", func() error {
			batch := randTuples(rng, 30)
			all = append(all, batch...)
			return s.Append(batch)
		}},
		{"seal", s.Seal},
		{"append2", func() error {
			batch := randTuples(rng, 30)
			all = append(all, batch...)
			return s.Append(batch)
		}},
		{"seal2", s.Seal},
		{"seal3", func() error {
			batch := randTuples(rng, 120)
			all = append(all, batch...)
			if err := s.Append(batch); err != nil {
				return err
			}
			return s.Seal()
		}},
		{"compact", func() error { _, err := s.Compact(); return err }},
	}
	for _, m := range mutate {
		before := s.Generation()
		if err := m.do(); err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		if after := s.Generation(); after <= before {
			t.Fatalf("%s: generation %d -> %d, want a bump", m.name, before, after)
		}
		check("after " + m.name)
		check("after " + m.name + " (warm)")
	}
}

// TestGenerationPersists holds the generation monotonic across in-memory
// transitions and persisted across a reopen.
func TestGenerationPersists(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Dims: testDims, SealTuples: 64, NoSync: true, DisableAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	g0 := s.Generation()
	if err := s.Append(randTuples(rand.New(rand.NewSource(1)), 10)); err != nil {
		t.Fatal(err)
	}
	g1 := s.Generation()
	if g1 <= g0 {
		t.Fatalf("append: generation %d -> %d, want a bump", g0, g1)
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	g2 := s.Generation()
	if g2 <= g1 {
		t.Fatalf("seal: generation %d -> %d, want a bump", g1, g2)
	}
	if st := s.Stats(); st.Generation != g2 {
		t.Fatalf("Stats.Generation = %d, Generation() = %d", st.Generation, g2)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	man, found, err := loadManifest(dir)
	if err != nil || !found {
		t.Fatalf("loadManifest: found=%v err=%v", found, err)
	}
	if man.Generation != g2 {
		t.Fatalf("manifest generation %d, sealed at %d", man.Generation, g2)
	}
	s2, err := Open(dir, Options{NoSync: true, DisableAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if g := s2.Generation(); g <= g2 {
		t.Fatalf("reopen: generation %d, want above the persisted %d", g, g2)
	}
}

// TestRollupPlanner pins the routing rules: eligible grouped queries go
// through the smallest covering rollup, restricted dropped dimensions and
// stale covers fall back to the plain fan-out, and answers are identical
// either way.
func TestRollupPlanner(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s, err := Open(t.TempDir(), Options{
		Dims:               testDims,
		SealTuples:         64,
		CompactFanout:      3,
		DisableAutoCompact: true,
		NoSync:             true,
		Rollups:            [][]string{{"A"}, {"A", "B"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var all []dwarf.Tuple
	appendAndSeal := func(n int) {
		t.Helper()
		batch := randTuples(rng, n)
		if err := s.Append(batch); err != nil {
			t.Fatal(err)
		}
		all = append(all, batch...)
		if err := s.Seal(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		appendAndSeal(50)
	}
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if len(st.Rollups) != 2 {
		t.Fatalf("after compact: %d rollups, want 2 (%+v)", len(st.Rollups), st.Rollups)
	}
	for _, r := range st.Rollups {
		if r.Covers != len(st.Segments) {
			t.Fatalf("rollup %s covers %d of %d segments", r.File, r.Covers, len(st.Segments))
		}
	}

	ref, err := dwarf.New(testDims, all)
	if err != nil {
		t.Fatal(err)
	}
	allSels := []dwarf.Selector{dwarf.SelectAll(), dwarf.SelectAll(), dwarf.SelectAll()}
	checkGroup := func(label string, dim int, sels []dwarf.Selector) {
		t.Helper()
		got, err := s.GroupBy(dim, sels)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		want, _ := ref.GroupBy(dim, sels)
		if len(got) != len(want) {
			t.Fatalf("%s: %d groups, want %d", label, len(got), len(want))
		}
		for k, a := range want {
			if !got[k].Equal(a) {
				t.Fatalf("%s key %q: store=%+v batch=%+v", label, k, got[k], a)
			}
		}
	}

	// Grouping by A with everything else unrestricted: the A rollup (the
	// smallest eligible) answers, and the fan-out skips the segments.
	before := s.Stats().RollupHits
	checkGroup("via rollup", 0, allSels)
	if got := s.Stats().RollupHits; got != before+1 {
		t.Fatalf("RollupHits %d -> %d, want a rollup-planned query", before, got)
	}

	// A restriction on an aggregated-away dimension disqualifies every
	// rollup: C is rolled up to ALL in both, so its key split is gone.
	before = s.Stats().RollupHits
	restricted := []dwarf.Selector{dwarf.SelectAll(), dwarf.SelectAll(), dwarf.SelectKeys(dimKey(2, 1))}
	checkGroup("dropped-dim restriction", 0, restricted)
	if got := s.Stats().RollupHits; got != before {
		t.Fatalf("RollupHits %d -> %d: restricted query must not use a rollup", before, got)
	}

	// Grouping by B alone: only the {A,B} rollup keeps B.
	before = s.Stats().RollupHits
	checkGroup("via wider rollup", 1, allSels)
	if got := s.Stats().RollupHits; got != before+1 {
		t.Fatalf("RollupHits %d -> %d, want the {A,B} rollup", before, got)
	}

	// Pivot and the name-based RollUp surface route the same way.
	before = s.Stats().RollupHits
	gotRows, err := s.Pivot([]int{1, 0}, allSels)
	if err != nil {
		t.Fatal(err)
	}
	wantRows, _ := ref.Pivot([]int{1, 0}, allSels)
	comparePivot(t, "Pivot via rollup", gotRows, wantRows)
	if _, _, err := query.RollUp(s, "A"); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().RollupHits; got != before+2 {
		t.Fatalf("RollupHits %d -> %d, want Pivot and RollUp both planned", before, got)
	}

	// A new sealed segment is outside every cover: the rollup still answers
	// for the files it covers, with the fresh segment fanned out beside it.
	appendAndSeal(40)
	ref, err = dwarf.New(testDims, all)
	if err != nil {
		t.Fatal(err)
	}
	before = s.Stats().RollupHits
	checkGroup("rollup plus uncovered segment", 0, allSels)
	if got := s.Stats().RollupHits; got != before+1 {
		t.Fatalf("RollupHits %d -> %d, want the partially-covering rollup", before, got)
	}

	// Compaction replaces covered files; maintainRollups rebuilds covers
	// over the surviving set so the planner stays eligible.
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	for _, r := range st.Rollups {
		if r.Covers != len(st.Segments) {
			t.Fatalf("after recompact: rollup %s covers %d of %d segments", r.File, r.Covers, len(st.Segments))
		}
	}
	checkGroup("after recompact", 0, allSels)
}

// TestRollupOrphanCleanup: a rollup file the manifest does not list is
// deleted on Open, and manifest-listed rollups reload.
func TestRollupOrphanCleanup(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		Dims: testDims, SealTuples: 64, NoSync: true,
		DisableAutoCompact: true, Rollups: [][]string{{"A"}},
	}
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(randTuples(rand.New(rand.NewSource(2)), 30)); err != nil {
		t.Fatal(err)
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	orphan := filepath.Join(dir, rollupFileName(123456))
	if err := os.WriteFile(orphan, []byte("not a cube"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphan rollup file survived open: %v", err)
	}
	if st := s2.Stats(); len(st.Rollups) != 1 {
		t.Fatalf("manifest rollup did not reload: %+v", st.Rollups)
	}
}

// TestTinySealAge: SealAge below the ticker floor must not panic
// time.NewTicker (SealAge/2 truncates to 0 for 1ns) and must still seal.
func TestTinySealAge(t *testing.T) {
	s, err := Open(t.TempDir(), Options{
		Dims: testDims, SealTuples: 1 << 20, SealAge: time.Nanosecond,
		NoSync: true, DisableAutoCompact: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Append(randTuples(rand.New(rand.NewSource(3)), 5)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().Seals == 0 {
		if time.Now().After(deadline) {
			t.Fatal("age-based seal never fired")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st := s.Stats(); st.SealedTuples != 5 || st.LiveTuples != 0 {
		t.Fatalf("after age seal: %+v", st)
	}
}

// TestKickSealsAgedMemtable pins the kick-path half of the background
// loop: an aged memtable is sealed by a kick without waiting for the next
// ticker fire. SealAge is an hour so the ticker cannot fire in-test; the
// memtable's age is forged and a kick sent by hand.
func TestKickSealsAgedMemtable(t *testing.T) {
	s, err := Open(t.TempDir(), Options{
		Dims: testDims, SealTuples: 1 << 20, SealAge: time.Hour,
		NoSync: true, DisableAutoCompact: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Append(randTuples(rand.New(rand.NewSource(4)), 5)); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	s.memSince = time.Now().Add(-2 * time.Hour)
	s.mu.Unlock()
	select {
	case s.kick <- struct{}{}:
	default:
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().Seals == 0 {
		if time.Now().After(deadline) {
			t.Fatal("kick did not seal the aged memtable")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestStoreCacheConcurrent is the -race proof for the planned path: cached
// queries run against continuous ingest with automatic seals, compactions
// and rollup maintenance, the writer asserts read-your-writes through the
// cache after every acked batch, and the final state is held equal to a
// batch cube.
func TestStoreCacheConcurrent(t *testing.T) {
	opts := cacheTestOptions(2)
	opts.DisableAutoCompact = false
	opts.SealTuples = 120
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	allSels := []dwarf.Selector{dwarf.SelectAll(), dwarf.SelectAll(), dwarf.SelectAll()}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				sels := randSelectors(rng)
				switch rng.Intn(3) {
				case 0:
					if _, err := s.GroupBy(rng.Intn(3), sels); err != nil {
						t.Errorf("reader GroupBy: %v", err)
						return
					}
				case 1:
					if _, err := s.Pivot(pivotDims(rng), sels); err != nil {
						t.Errorf("reader Pivot: %v", err)
						return
					}
				default:
					spec := dwarf.TopKSpec{K: 1 + rng.Intn(3), By: dwarf.Metric(rng.Intn(5))}
					if _, err := s.TopK(rng.Intn(3), sels, spec); err != nil {
						t.Errorf("reader TopK: %v", err)
						return
					}
				}
			}
		}(r)
	}

	rng := rand.New(rand.NewSource(77))
	var all []dwarf.Tuple
	var wantSum float64
	for i := 0; i < 40; i++ {
		batch := randTuples(rng, rng.Intn(30)+1)
		if err := s.Append(batch); err != nil {
			t.Fatal(err)
		}
		all = append(all, batch...)
		for _, tu := range batch {
			wantSum += tu.Measure
		}
		// Read-your-writes through the cache: the acked batch must be in
		// the very next answer, cached or not.
		groups, err := s.GroupBy(0, allSels)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, a := range groups {
			sum += a.Sum
		}
		if sum != wantSum {
			t.Fatalf("after batch %d: cached GroupBy sum %v, appended %v", i, sum, wantSum)
		}
	}
	close(stop)
	readers.Wait()
	seed := rng.Int63()
	compareStore(t, s, all, nil, rand.New(rand.NewSource(seed)), false)
	compareStore(t, s, all, nil, rand.New(rand.NewSource(seed)), false)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
