package cubestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/dwarf"
)

// Crash-recovery suite: kill the store at injected fault points, reopen,
// and assert that no acknowledged tuple is lost and no segment file is
// orphaned or double-counted. Tests drive the failpoints declared in
// store.go; a failpoint error aborts the operation with the on-disk state
// exactly as a crash at that point would leave it, and crashClose drops the
// poisoned in-memory store without any tidy-up.

var errInjected = errors.New("injected crash")

// openRecoveryStore seeds a store with acked batches; manual seal/compact
// control keeps the interleavings deterministic.
func openRecoveryStore(t *testing.T, dir string, rng *rand.Rand, batches int) (*Store, []dwarf.Tuple) {
	t.Helper()
	s, err := Open(dir, Options{
		Dims:               testDims,
		SealTuples:         1 << 30, // manual seals only
		ChunkTuples:        7,
		CompactFanout:      2,
		DisableAutoCompact: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var all []dwarf.Tuple
	for i := 0; i < batches; i++ {
		batch := randTuples(rng, rng.Intn(15)+1)
		if err := s.Append(batch); err != nil {
			t.Fatal(err)
		}
		all = append(all, batch...)
	}
	return s, all
}

// reopenAndVerify reopens dir and asserts the acked tuples are exactly
// reconstructed and the directory holds no stray files.
func reopenAndVerify(t *testing.T, dir string, all []dwarf.Tuple, rng *rand.Rand) *Store {
	t.Helper()
	s, err := Open(dir, Options{DisableAutoCompact: true, ChunkTuples: 7})
	if err != nil {
		t.Fatal(err)
	}
	compareStore(t, s, all, nil, rng, true)
	assertDirAccounted(t, dir, s)
	return s
}

// assertDirAccounted checks every file in dir is either the manifest, a
// manifest-listed segment, or a live WAL generation.
func assertDirAccounted(t *testing.T, dir string, s *Store) {
	t.Helper()
	s.mu.Lock()
	listed := map[string]bool{manifestName: true, lockName: true}
	for _, m := range s.man.Segments {
		listed[m.File] = true
	}
	walGen := s.man.WALGen
	s.mu.Unlock()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if listed[name] {
			continue
		}
		if gen, ok := walGenOf(name); ok && gen >= walGen {
			continue
		}
		t.Errorf("unaccounted file in store dir: %s", name)
	}
}

func TestRecoveryCrashMidWALWrite(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(11))
	s, all := openRecoveryStore(t, dir, rng, 6)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a torn tail: a crash mid-write leaves a clean prefix of a
	// record (header plus part of the payload). It was never acknowledged,
	// so replay must drop it and keep everything before it.
	walFile := ""
	gens, err := listWALGens(dir)
	if err != nil || len(gens) == 0 {
		t.Fatalf("want a live WAL generation, gens=%v err=%v", gens, err)
	}
	walFile = walPath(dir, gens[len(gens)-1])
	rec := appendWALRecord(nil, randTuples(rng, 5))
	torn := rec[:len(rec)-7]
	f, err := os.OpenFile(walFile, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := reopenAndVerify(t, dir, all, rng)

	// The acked tuples survive another round with garbage appended, and the
	// store keeps working after recovery.
	batch := randTuples(rng, 4)
	if err := s2.Append(batch); err != nil {
		t.Fatal(err)
	}
	all = append(all, batch...)
	if err := s2.Seal(); err != nil {
		t.Fatal(err)
	}
	s2.crashClose()
	s3 := reopenAndVerify(t, dir, all, rng)
	s3.Close()
}

func TestRecoveryCrashDuringSeal(t *testing.T) {
	for _, fp := range []string{fpSealBuilt, fpSealSegmentWritten, fpSealManifestSwapped} {
		t.Run(fp, func(t *testing.T) {
			dir := t.TempDir()
			rng := rand.New(rand.NewSource(23))
			s, all := openRecoveryStore(t, dir, rng, 8)
			s.setFailpoint(func(name string) error {
				if name == fp {
					return errInjected
				}
				return nil
			})
			if err := s.Seal(); !errors.Is(err, errInjected) {
				t.Fatalf("Seal with failpoint %s = %v", fp, err)
			}
			s.crashClose()

			s2, err := Open(dir, Options{DisableAutoCompact: true, ChunkTuples: 7})
			if err != nil {
				t.Fatal(err)
			}
			// No acknowledged tuple lost, none double-counted: whether the
			// crash landed before or after the manifest swap, the tuples
			// exist exactly once (WAL replay or sealed segment).
			compareStore(t, s2, all, nil, rng, true)
			assertDirAccounted(t, dir, s2)
			switch fp {
			case fpSealSegmentWritten:
				// The segment file was written but never committed: it must
				// have been deleted as an orphan.
				if s2.orphansRemoved == 0 {
					t.Error("expected the uncommitted segment file to be removed as an orphan")
				}
				if st := s2.Stats(); len(st.Segments) != 0 {
					t.Errorf("uncommitted segment resurrected: %+v", st.Segments)
				}
			case fpSealManifestSwapped:
				// The manifest swap committed the seal: the tuples live in
				// the segment and the old WAL generations are dead.
				if st := s2.Stats(); len(st.Segments) != 1 || st.SealedTuples != len(all) || st.LiveTuples != 0 {
					t.Errorf("committed seal not honored after crash: %+v", st)
				}
			}
			s2.Close()
		})
	}
}

func TestRecoveryCrashDuringCompaction(t *testing.T) {
	for _, fp := range []string{fpCompactSegmentWritten, fpCompactManifestSwapped} {
		t.Run(fp, func(t *testing.T) {
			dir := t.TempDir()
			rng := rand.New(rand.NewSource(37))
			s, all := openRecoveryStore(t, dir, rng, 6)
			// Two sealed segments at the same level, fanout 2: compactable.
			if err := s.Seal(); err != nil {
				t.Fatal(err)
			}
			batch := randTuples(rng, 20)
			if err := s.Append(batch); err != nil {
				t.Fatal(err)
			}
			all = append(all, batch...)
			if err := s.Seal(); err != nil {
				t.Fatal(err)
			}
			before := s.Stats()
			if len(before.Segments) != 2 {
				t.Fatalf("setup: want 2 segments, have %+v", before.Segments)
			}
			s.setFailpoint(func(name string) error {
				if name == fp {
					return errInjected
				}
				return nil
			})
			if _, err := s.Compact(); !errors.Is(err, errInjected) {
				t.Fatalf("Compact with failpoint %s = %v", fp, err)
			}
			s.crashClose()

			s2, err := Open(dir, Options{DisableAutoCompact: true, ChunkTuples: 7})
			if err != nil {
				t.Fatal(err)
			}
			compareStore(t, s2, all, nil, rng, true)
			assertDirAccounted(t, dir, s2)
			st := s2.Stats()
			switch fp {
			case fpCompactSegmentWritten:
				// Before the manifest swap the merged output is an orphan;
				// the inputs must still be live and counted once.
				if len(st.Segments) != 2 {
					t.Errorf("inputs lost or output double-counted: %+v", st.Segments)
				}
				if s2.orphansRemoved == 0 {
					t.Error("expected the uncommitted merged segment to be removed as an orphan")
				}
			case fpCompactManifestSwapped:
				// After the swap the merged segment is the truth and the
				// input files are garbage (deleted at crash or on open).
				if len(st.Segments) != 1 {
					t.Errorf("compaction commit not honored: %+v", st.Segments)
				}
			}
			if st.SealedTuples != len(all) {
				t.Errorf("sealed tuples = %d, acked %d", st.SealedTuples, len(all))
			}
			// The surviving store compacts to completion.
			if _, err := s2.Compact(); err != nil {
				t.Fatal(err)
			}
			compareStore(t, s2, all, nil, rng, true)
			s2.Close()
		})
	}
}

// TestRecoveryRepeatedCrashes interleaves appends with crashes at every
// fault point in sequence, reopening each time — the accumulated store must
// always equal the batch build of everything acked so far.
func TestRecoveryRepeatedCrashes(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(53))
	var all []dwarf.Tuple
	points := []string{fpSealBuilt, fpSealSegmentWritten, fpSealManifestSwapped,
		fpCompactSegmentWritten, fpCompactManifestSwapped, "none"}
	for round, fp := range points {
		s, err := Open(dir, Options{
			Dims:               testDims,
			SealTuples:         1 << 30,
			ChunkTuples:        7,
			CompactFanout:      2,
			DisableAutoCompact: true,
		})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for b := 0; b < 3; b++ {
			batch := randTuples(rng, rng.Intn(12)+1)
			if err := s.Append(batch); err != nil {
				t.Fatal(err)
			}
			all = append(all, batch...)
		}
		s.setFailpoint(func(name string) error {
			if name == fp {
				return fmt.Errorf("%w at %s", errInjected, name)
			}
			return nil
		})
		sealErr := s.Seal()
		var compactErr error
		if sealErr == nil {
			_, compactErr = s.Compact()
		}
		if fp != "none" && sealErr == nil && compactErr == nil {
			// The fault point may legitimately not be reached (e.g. no
			// compactable group yet); that is still a valid crash state.
			t.Logf("round %d: failpoint %s not reached", round, fp)
		}
		s.crashClose()
		s2 := reopenAndVerify(t, dir, all, rng)
		s2.Close()
	}
	if len(all) == 0 {
		t.Fatal("no tuples acked")
	}
}

// TestRecoveryMidFileWALCorruption: a CRC-corrupt record with acknowledged
// records after it is not a torn tail — reopening must fail loudly rather
// than silently dropping the acked records behind the damage.
func TestRecoveryMidFileWALCorruption(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(83))
	s, _ := openRecoveryStore(t, dir, rng, 5)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	gens, err := listWALGens(dir)
	if err != nil || len(gens) == 0 {
		t.Fatalf("gens=%v err=%v", gens, err)
	}
	path := walPath(dir, gens[len(gens)-1])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 32 {
		t.Fatalf("wal only %d bytes", len(data))
	}
	data[12] ^= 0xff // flip a payload byte of the FIRST record
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorruptWAL) {
		t.Fatalf("open over mid-file WAL corruption = %v, want ErrCorruptWAL", err)
	}
}

// TestRecoveryHugeCountWALRecord: a CRC-valid frame claiming an absurd
// tuple count must fail cleanly, not attempt an OOM-sized allocation.
func TestRecoveryHugeCountWALRecord(t *testing.T) {
	payload := make([]byte, 64)
	n := binary.PutUvarint(payload, 1<<40)
	_ = n
	if _, err := decodeWALPayload(payload); !errors.Is(err, ErrCorruptWAL) {
		t.Fatalf("huge count = %v, want ErrCorruptWAL", err)
	}
	// Huge claimed ndims inside a plausible count likewise.
	p := binary.AppendUvarint(nil, 1)  // one tuple
	p = binary.AppendUvarint(p, 1<<40) // absurd ndims
	p = append(p, make([]byte, 32)...) // some bytes
	if _, err := decodeWALPayload(p); !errors.Is(err, ErrCorruptWAL) {
		t.Fatalf("huge ndims = %v, want ErrCorruptWAL", err)
	}
}

// TestRecoveryRefusesManifestlessStoreFiles: a directory holding segments
// or WAL generations without a MANIFEST is a damaged store; initializing a
// fresh store there would wipe it.
func TestRecoveryRefusesManifestlessStoreFiles(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(97))
	s, _ := openRecoveryStore(t, dir, rng, 4)
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	segFile := s.Stats().Segments[0].File
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Dims: testDims}); err == nil {
		t.Fatal("open must refuse a manifest-less directory holding store files")
	}
	if _, err := os.Stat(filepath.Join(dir, segFile)); err != nil {
		t.Fatalf("refused open must not touch the segment file: %v", err)
	}
}

// TestRecoveryManifestIsTruth corrupts nothing but deletes a manifest-listed
// segment file: Open must fail loudly instead of silently serving partial
// answers.
func TestRecoveryManifestIsTruth(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(71))
	s, _ := openRecoveryStore(t, dir, rng, 4)
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if len(st.Segments) != 1 {
		t.Fatalf("want 1 segment, have %+v", st.Segments)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, st.Segments[0].File)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("open with a missing manifest-listed segment should fail")
	}
}

// TestRecoveryCrashWithQueuedCommits crashes with a non-empty commit queue:
// batches handed to the committer but never written. None of them was
// acknowledged, so after reopen exactly the previously-acked tuples exist —
// the queued batches must not surface, and the earlier acks must not be
// lost.
func TestRecoveryCrashWithQueuedCommits(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(131))
	s, all := openRecoveryStore(t, dir, rng, 5)
	s.setFailpoint(func(name string) error {
		if name == fpCommitWrite {
			return errInjected
		}
		return nil
	})
	// Concurrent writers pile batches into the commit queue; the committer
	// dies before writing any of them.
	const writers = 4
	batches := make([][]dwarf.Tuple, writers)
	for w := range batches {
		batches[w] = randTuples(rng, rng.Intn(8)+1)
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := s.Append(batches[w]); !errors.Is(err, errInjected) {
				t.Errorf("queued append %d = %v, want injected crash", w, err)
			}
		}(w)
	}
	wg.Wait()
	s.crashClose()

	s2 := reopenAndVerify(t, dir, all, rng)
	// The unwritten batches stay gone, and the reopened store accepts the
	// retries cleanly.
	for w := 0; w < writers; w++ {
		if err := s2.Append(batches[w]); err != nil {
			t.Fatal(err)
		}
		all = append(all, batches[w]...)
	}
	compareStore(t, s2, all, nil, rng, true)
	s2.Close()
}

// TestRecoveryCrashWithFrozenPending stacks several frozen memtables behind
// a failing sealer, then crashes. Every frozen tuple is still covered by
// its live WAL generation (the manifest never advanced), so replay must
// reconstruct all of them exactly once.
func TestRecoveryCrashWithFrozenPending(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(137))
	s, err := Open(dir, Options{
		Dims:               testDims,
		SealTuples:         1 << 30, // manual freezes only
		ChunkTuples:        7,
		MaxFrozen:          4,
		DisableAutoCompact: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.setFailpoint(func(name string) error {
		if name == fpSealBuilt {
			return errInjected
		}
		return nil
	})
	var all []dwarf.Tuple
	for round := 0; round < 3; round++ {
		batch := randTuples(rng, rng.Intn(10)+1)
		if err := s.Append(batch); err != nil {
			t.Fatal(err)
		}
		all = append(all, batch...)
		// The freeze succeeds (memtable swapped, WAL rotated) but every seal
		// attempt dies before writing anything: the frozen queue grows.
		if err := s.Seal(); !errors.Is(err, errInjected) {
			t.Fatalf("round %d: Seal = %v, want injected crash", round, err)
		}
	}
	st := s.Stats()
	if st.SealQueueDepth != 3 || st.FrozenMemtables != 3 || st.Seals != 0 {
		t.Fatalf("want 3 frozen memtables pending, stats = %+v", st)
	}
	// Read-your-writes holds across the frozen stack before the crash.
	compareStore(t, s, all, nil, rng, false)
	s.crashClose()

	// Reopen replays the (still live) WAL generations of all three frozen
	// memtables plus the live one: every acked tuple exactly once, and the
	// recovered store seals to completion.
	s2 := reopenAndVerify(t, dir, all, rng)
	if err := s2.Seal(); err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.SealedTuples != len(all) || st.LiveTuples != 0 || st.SealQueueDepth != 0 {
		t.Fatalf("recovered store did not seal cleanly: %+v", st)
	}
	compareStore(t, s2, all, nil, rng, true)
	assertDirAccounted(t, dir, s2)
	s2.Close()
}

// TestRecoverySealFailureRequeueReopen: a seal that dies after writing its
// segment file (but before the manifest commit) keeps its frozen memtable
// queued; the retry seals the same tuples into a fresh segment, and the
// reopen removes the abandoned file — the tuples exist exactly once
// throughout.
func TestRecoverySealFailureRequeueReopen(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(139))
	s, all := openRecoveryStore(t, dir, rng, 6)
	var attempts atomic.Int32
	s.setFailpoint(func(name string) error {
		if name == fpSealSegmentWritten && attempts.Add(1) == 1 {
			return errInjected
		}
		return nil
	})
	// The first attempt may be taken by the explicit Seal or by the kicked
	// background sealer; either way it fails, requeues the frozen memtable,
	// and a later drive seals it.
	if err := s.Seal(); err != nil && !errors.Is(err, errInjected) {
		t.Fatalf("Seal = %v", err)
	}
	for s.Stats().Seals == 0 {
		if err := s.Seal(); err != nil {
			t.Fatalf("retry Seal = %v", err)
		}
	}
	if n := attempts.Load(); n < 2 {
		t.Fatalf("seal attempts = %d, want a failure plus a successful retry", n)
	}
	st := s.Stats()
	if st.Seals != 1 || st.SealQueueDepth != 0 || st.SealedTuples != len(all) || st.LastSealError != "" {
		t.Fatalf("after requeued seal: %+v", st)
	}
	compareStore(t, s, all, nil, rng, true)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The failed attempt's segment file is still on disk, unreferenced;
	// reopen deletes it and serves the committed copy only.
	s2 := reopenAndVerify(t, dir, all, rng)
	if s2.orphansRemoved == 0 {
		t.Error("expected the abandoned segment file from the failed seal attempt to be removed")
	}
	s2.Close()
}
