package cubestore

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dwarf"
)

// Concurrency suite for the ingest pipeline: many writers group-committing
// through the shared WAL while seals, compactions and windowed readers run
// against the same store. Meant to be driven under -race; the assertions
// pin read-your-writes after every ack and bit-identity of the final store
// to a serial batch build of the same multiset.

func writerKey(w int) string { return fmt.Sprintf("w%d", w) }

// writerTuples builds one writer's batch: dim A carries the writer's own
// key, so Point(writerKey, *, *) counts exactly that writer's acked tuples.
func writerTuples(rng *rand.Rand, w, n int) []dwarf.Tuple {
	out := make([]dwarf.Tuple, n)
	for i := range out {
		out[i] = dwarf.Tuple{
			Dims: []string{
				writerKey(w),
				dimKey(1, rng.Intn(testDimSizes[1])),
				dimKey(2, rng.Intn(testDimSizes[2])),
			},
			Measure: float64(rng.Intn(9) + 1),
		}
	}
	return out
}

// TestStoreConcurrentPipeline runs the full machine at once: concurrent
// writers, background threshold seals with a bounded frozen queue, explicit
// Seal and Compact calls, and windowed readers — then checks the surviving
// store answers every query exactly like a serial batch build.
func TestStoreConcurrentPipeline(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{
		Dims:          testDims,
		SealTuples:    60,
		ChunkTuples:   16,
		CompactFanout: 3,
		MaxFrozen:     2,
		NoSync:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	const writers = 5
	const batchesPer = 12
	// Batches are pre-generated so the goroutines never share an rng.
	plans := make([][][]dwarf.Tuple, writers)
	var all []dwarf.Tuple
	for w := range plans {
		rng := rand.New(rand.NewSource(int64(1000 + w)))
		plans[w] = make([][]dwarf.Tuple, batchesPer)
		for b := range plans[w] {
			plans[w][b] = writerTuples(rng, w, rng.Intn(8)+3)
			all = append(all, plans[w][b]...)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			acked := 0
			for _, batch := range plans[w] {
				if err := s.Append(batch); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				acked += len(batch)
				// Read-your-writes after every ack: this writer's own key
				// must count everything it has been acknowledged for, no
				// matter where those tuples sit (segment, frozen, live).
				agg, err := s.Point(writerKey(w), dwarf.All, dwarf.All)
				if err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				if agg.Count != int64(acked) {
					t.Errorf("writer %d: read-your-writes broken: count %d after %d acked", w, agg.Count, acked)
					return
				}
			}
		}(w)
	}

	done := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(2000 + r)))
			for {
				select {
				case <-done:
					return
				default:
				}
				// Windowed reads racing the pipeline must never error; the
				// values are checked against the reference after the dust
				// settles.
				if _, err := s.Range(randSelectors(rng)); err != nil {
					t.Errorf("reader %d: Range: %v", r, err)
					return
				}
				if _, err := s.GroupBy(1, randSelectors(rng)); err != nil {
					t.Errorf("reader %d: GroupBy: %v", r, err)
					return
				}
			}
		}(r)
	}
	readers.Add(1)
	go func() { // maintenance racing the writers
		defer readers.Done()
		for {
			select {
			case <-done:
				return
			case <-time.After(2 * time.Millisecond):
			}
			if err := s.Seal(); err != nil {
				t.Errorf("concurrent Seal: %v", err)
				return
			}
			if _, err := s.Compact(); err != nil {
				t.Errorf("concurrent Compact: %v", err)
				return
			}
		}
	}()

	wg.Wait()
	close(done)
	readers.Wait()
	if t.Failed() {
		return
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}

	st := s.Stats()
	if st.Appended != int64(len(all)) || st.SealedTuples != len(all) || st.LiveTuples != 0 || st.SealQueueDepth != 0 {
		t.Fatalf("final accounting: %+v (want %d tuples all sealed)", st, len(all))
	}
	if st.FrozenMemtables < 1 || st.GroupCommits < 1 {
		t.Fatalf("pipeline never engaged: %+v", st)
	}
	// Bit-identity: the store built by the concurrent pipeline answers
	// exactly like a single serial batch build of the same multiset.
	rng := rand.New(rand.NewSource(77))
	compareStore(t, s, all, nil, rng, false)
	for w := 0; w < writers; w++ {
		want := 0
		for _, b := range plans[w] {
			want += len(b)
		}
		agg, err := s.Point(writerKey(w), dwarf.All, dwarf.All)
		if err != nil || agg.Count != int64(want) {
			t.Errorf("writer %d final count = %d (%v), want %d", w, agg.Count, err, want)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// And so does the store recovered from its directory.
	s2 := reopenAndVerify(t, dir, all, rng)
	s2.Close()
}

// TestStoreGroupCommitAccounting pins the fsync-sharing invariant under
// real synced commits: every acked batch is covered by exactly one group,
// so GroupCommits + FsyncsSaved equals the number of acked batches.
func TestStoreGroupCommitAccounting(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{
		Dims:               testDims,
		SealTuples:         1 << 30,
		ChunkTuples:        7,
		DisableAutoCompact: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const writers = 8
	const batchesPer = 5
	plans := make([][][]dwarf.Tuple, writers)
	total := 0
	for w := range plans {
		rng := rand.New(rand.NewSource(int64(3000 + w)))
		plans[w] = make([][]dwarf.Tuple, batchesPer)
		for b := range plans[w] {
			plans[w][b] = randTuples(rng, 3)
			total += 3
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, batch := range plans[w] {
				if err := s.Append(batch); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	st := s.Stats()
	const batches = writers * batchesPer
	if st.GroupCommits+st.FsyncsSaved != batches {
		t.Errorf("GroupCommits %d + FsyncsSaved %d != %d acked batches", st.GroupCommits, st.FsyncsSaved, batches)
	}
	if st.GroupCommits < 1 || st.GroupCommits > batches {
		t.Errorf("GroupCommits = %d out of range [1, %d]", st.GroupCommits, batches)
	}
	if st.Appended != int64(total) || s.TotalTuples() != total {
		t.Errorf("appended %d / total %d, want %d", st.Appended, s.TotalTuples(), total)
	}
}

// TestStoreBackpressureBoundsFrozen wedges the sealer with a failpoint
// until MaxFrozen memtables are pending, then shows the next
// threshold-crossing append blocks (bounded memory) and completes as soon
// as the sealer is allowed to drain — the self-driving retry, no external
// kick needed.
func TestStoreBackpressureBoundsFrozen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{
		Dims:               testDims,
		SealTuples:         10,
		ChunkTuples:        7,
		MaxFrozen:          2,
		NoSync:             true,
		DisableAutoCompact: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var allow atomic.Bool
	s.setFailpoint(func(name string) error {
		if name == fpSealBuilt && !allow.Load() {
			return errInjected
		}
		return nil
	})
	rng := rand.New(rand.NewSource(211))
	var all []dwarf.Tuple
	appendN := func(n int) {
		t.Helper()
		batch := randTuples(rng, n)
		if err := s.Append(batch); err != nil {
			t.Fatal(err)
		}
		all = append(all, batch...)
	}
	// Two threshold crossings freeze two memtables the sealer cannot drain;
	// the third fills the live memtable to its threshold again.
	appendN(10)
	appendN(10)
	appendN(10)
	waitForStats(t, s, "frozen queue at its bound", func(st Stats) bool {
		return st.SealQueueDepth == 2 && st.LiveTuples == 30
	})

	// The next append would make it MaxFrozen+1 frozen memtables: it must
	// block instead of growing memory.
	blocked := make(chan error, 1)
	go func() {
		batch := randTuples(rand.New(rand.NewSource(212)), 5)
		err := s.Append(batch)
		if err == nil {
			s.mu.Lock()
			all = append(all, batch...) // guarded: main reads after <-blocked
			s.mu.Unlock()
		}
		blocked <- err
	}()
	select {
	case err := <-blocked:
		t.Fatalf("append got through a full frozen queue: %v", err)
	case <-time.After(150 * time.Millisecond):
	}
	if st := s.Stats(); st.SealQueueDepth > 2 {
		t.Fatalf("frozen queue exceeded MaxFrozen: %+v", st)
	}

	// Unwedge the sealer. The blocked group's own retry kicks drain the
	// queue and the append completes without any further calls from here.
	allow.Store(true)
	select {
	case err := <-blocked:
		if err != nil {
			t.Fatalf("backpressured append failed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("append still blocked after the sealer was unwedged")
	}
	waitForStats(t, s, "seal error cleared by the successful retry", func(st Stats) bool {
		return st.LastSealError == ""
	})
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	compareStore(t, s, all, nil, rng, true)
}
