package cubestore

import (
	"runtime"
	"sync"

	"repro/internal/dwarf"
	"repro/internal/qcache"
)

// The planned query path serves GroupBy/Pivot/TopK when a result cache or
// rollup segments are configured. It answers exactly like the plain
// fan-out — same kernel, same deterministic merge order — but:
//
//   - Full results are cached stamped with the store generation read
//     BEFORE the snapshot. A write landing in between leaves the result
//     stamped older than the data it includes — at worst an unnecessary
//     recompute on the next lookup, never a stale hit: an acknowledged
//     append always bumps the generation after folding into the memtable,
//     so a matching stamp proves the cached answer reflects every
//     acknowledged write.
//   - Per-target partials are cached keyed by backing file + query key.
//     Segment and rollup files are immutable and their names never reused,
//     so these entries cannot go stale; only the live memtable's partial
//     is recomputed on every miss.
//   - A covering rollup segment replaces the segments it summarizes in the
//     fan-out, with the query remapped to the rollup's dimension subset.
//
// Cached values are shared across callers and with the cache itself, so
// results returned by the planned path are read-only — callers that mutate
// a GroupBy map must copy it first. The contract is audited end-to-end:
// dwarf.TopKFromGroups only reads the map it ranks (topKPlanned hands it
// the cache-shared GroupBy map directly), serve's paging only subslices
// cached []PivotGroup/[]GroupEntry results, and query.DrillDown — the one
// name-level API whose callers naturally mutate the result — copies before
// returning. TestPlannedPathSharedResultsRace in the serve package pins
// the whole surface under the race detector.

// plannedTarget is one immutable fan-out input: a view plus the (possibly
// dimension-remapped) query to run against it, and the backing file name
// that identifies its partials in the cache.
type plannedTarget struct {
	view *dwarf.CubeView
	file string
	dims []int // remapped grouped dims (dims[0] for GroupBy/TopK)
	sels []dwarf.Selector
}

// validPivotArgs mirrors the kernel's QueryPivot argument checks; invalid
// queries skip the planner so the kernel reports its usual error.
func validPivotArgs(dims []int, sels []dwarf.Selector, ndims int) bool {
	if len(sels) != ndims || len(dims) == 0 {
		return false
	}
	seen := make([]bool, ndims)
	for _, d := range dims {
		if d < 0 || d >= ndims || seen[d] {
			return false
		}
		seen[d] = true
	}
	return true
}

// planTargets picks the fan-out set for a query grouping by the store
// dimensions in grouped under sels: a covering rollup (query remapped to
// its subset) replaces the segments it summarizes, everything else fans
// out as usual, and zone maps then drop any target — segment or rollup —
// that provably holds no selected tuple. Pruning only shrinks the fan-out;
// the merged answer and the cache keys are unchanged either way. The flag
// reports whether a rollup was planned in.
func (s *Store) planTargets(st *storeState, grouped []int, sels []dwarf.Selector) ([]plannedTarget, bool) {
	prune := !s.opts.NoPrune
	admitSeg := func(seg *segment) bool {
		return !prune || dwarf.ZonesAdmit(seg.zones, sels)
	}
	pruned := int64(0)
	r := st.chooseRollup(grouped, sels)
	var out []plannedTarget
	viaRollup := false
	if r == nil {
		out = make([]plannedTarget, 0, len(st.segs))
		for _, seg := range st.segs {
			if !admitSeg(seg) {
				pruned++
				continue
			}
			out = append(out, plannedTarget{view: seg.view, file: seg.meta.File, dims: grouped, sels: sels})
		}
	} else {
		viaRollup = true
		rdims := make([]int, len(grouped))
		for i, d := range grouped {
			rdims[i] = r.pos[d]
		}
		rsels := make([]dwarf.Selector, len(r.dimIdx))
		for j, d := range r.dimIdx {
			rsels[j] = sels[d]
		}
		covered := make(map[string]bool, len(r.meta.Covers))
		for _, f := range r.meta.Covers {
			covered[f] = true
		}
		out = make([]plannedTarget, 0, len(st.segs)+1-len(r.meta.Covers))
		// The rollup's own zone maps (over its dimension subset) prune it
		// like any segment: rejected means every covered segment's selected
		// slice is empty, so dropping the whole target is sound.
		if !prune || dwarf.ZonesAdmit(r.zones, rsels) {
			out = append(out, plannedTarget{view: r.view, file: r.meta.File, dims: rdims, sels: rsels})
		} else {
			pruned++
		}
		for _, seg := range st.segs {
			if covered[seg.meta.File] {
				continue
			}
			if !admitSeg(seg) {
				pruned++
				continue
			}
			out = append(out, plannedTarget{view: seg.view, file: seg.meta.File, dims: grouped, sels: sels})
		}
	}
	if pruned > 0 {
		s.segsPruned.Add(pruned)
	}
	s.segsScanned.Add(int64(len(out)))
	return out, viaRollup
}

// runIndexed runs fn for every index in [0,n), concurrently under the same
// heuristic as fanOut.
func runIndexed(n int, fn func(int) error) error {
	if n <= 2 || runtime.GOMAXPROCS(0) == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) groupByPlanned(dim int, sels []dwarf.Selector) (map[string]dwarf.Aggregate, error) {
	return s.groupsAt(s.gen.Load(), dim, sels)
}

// groupsAt returns the merged GroupBy map for the store state stamped gen
// (which the caller read before any snapshot). TopK reuses it, so a TopK
// miss also warms the GroupBy entry and vice versa.
func (s *Store) groupsAt(gen uint64, dim int, sels []dwarf.Selector) (map[string]dwarf.Aggregate, error) {
	key := qcache.KeyGroupBy(dim, sels)
	if s.cache != nil {
		if v, ok := s.cache.GetResult(key, gen); ok {
			return v.(map[string]dwarf.Aggregate), nil
		}
	}
	groups, err := s.mergedGroups(dim, sels, key)
	if err != nil {
		return nil, err
	}
	if s.cache != nil {
		s.cache.PutResult(key, groups, gen, qcache.SizeOfGroupMap(groups))
	}
	return groups, nil
}

// mergedGroups computes a GroupBy through the planner: cached partials for
// immutable targets, a fresh walk for the rest plus the frozen and live
// memtables, all merged in deterministic target order (rollup, then
// uncovered segments oldest-first, then frozen memtables oldest-first, then
// live) into a fresh map. Frozen memtables are recomputed like the live one
// — they have no backing file to key never-stale partials on, and they
// disappear into a segment shortly anyway.
func (s *Store) mergedGroups(dim int, sels []dwarf.Selector, qkey string) (map[string]dwarf.Aggregate, error) {
	st := s.state.Load()
	live, err := st.mem.Cube()
	if err != nil {
		return nil, err
	}
	memCubes, err := memtableCubes(st, live)
	if err != nil {
		return nil, err
	}
	targets, viaRollup := s.planTargets(st, []int{dim}, sels)
	if viaRollup {
		s.rollupHits.Add(1)
	}
	parts := make([]map[string]dwarf.Aggregate, len(targets)+len(memCubes))
	missing := make([]int, 0, len(parts))
	for i := range targets {
		if s.cache != nil {
			if v, ok := s.cache.GetPartial(targets[i].file + "|" + qkey); ok {
				parts[i] = v.(map[string]dwarf.Aggregate)
				continue
			}
		}
		missing = append(missing, i)
	}
	for i := range memCubes { // memtables: always recomputed
		missing = append(missing, len(targets)+i)
	}
	err = runIndexed(len(missing), func(k int) error {
		i := missing[k]
		if i >= len(targets) {
			m, err := memCubes[i-len(targets)].GroupBy(dim, sels)
			parts[i] = m
			return err
		}
		pt := &targets[i]
		m, err := pt.view.GroupBy(pt.dims[0], pt.sels)
		if err != nil {
			return err
		}
		if s.cache != nil {
			s.cache.PutPartial(pt.file+"|"+qkey, m, qcache.SizeOfGroupMap(m))
		}
		parts[i] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	return dwarf.MergeGroupMaps(make(map[string]dwarf.Aggregate), parts...), nil
}

// memtableCubes lists the snapshot's always-recomputed fan-out tail: every
// frozen memtable's cube, oldest first, then the live cube.
func memtableCubes(st *storeState, live *dwarf.Cube) ([]*dwarf.Cube, error) {
	out := make([]*dwarf.Cube, 0, len(st.frozen)+1)
	for _, fz := range st.frozen {
		c, err := fz.mem.Cube()
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return append(out, live), nil
}

func (s *Store) pivotPlanned(dims []int, sels []dwarf.Selector) ([]dwarf.PivotGroup, error) {
	gen := s.gen.Load()
	key := qcache.KeyPivot(dims, sels)
	if s.cache != nil {
		if v, ok := s.cache.GetResult(key, gen); ok {
			return v.([]dwarf.PivotGroup), nil
		}
	}
	rows, err := s.mergedPivot(dims, sels, key)
	if err != nil {
		return nil, err
	}
	if s.cache != nil {
		s.cache.PutResult(key, rows, gen, qcache.SizeOfPivotRows(rows))
	}
	return rows, nil
}

// mergedPivot is mergedGroups for the multi-dimension shape.
func (s *Store) mergedPivot(dims []int, sels []dwarf.Selector, qkey string) ([]dwarf.PivotGroup, error) {
	st := s.state.Load()
	live, err := st.mem.Cube()
	if err != nil {
		return nil, err
	}
	memCubes, err := memtableCubes(st, live)
	if err != nil {
		return nil, err
	}
	targets, viaRollup := s.planTargets(st, dims, sels)
	if viaRollup {
		s.rollupHits.Add(1)
	}
	parts := make([][]dwarf.PivotGroup, len(targets)+len(memCubes))
	missing := make([]int, 0, len(parts))
	for i := range targets {
		if s.cache != nil {
			if v, ok := s.cache.GetPartial(targets[i].file + "|" + qkey); ok {
				parts[i] = v.([]dwarf.PivotGroup)
				continue
			}
		}
		missing = append(missing, i)
	}
	for i := range memCubes {
		missing = append(missing, len(targets)+i)
	}
	err = runIndexed(len(missing), func(k int) error {
		i := missing[k]
		if i >= len(targets) {
			rows, err := memCubes[i-len(targets)].Pivot(dims, sels)
			parts[i] = rows
			return err
		}
		pt := &targets[i]
		rows, err := pt.view.Pivot(pt.dims, pt.sels)
		if err != nil {
			return err
		}
		if s.cache != nil {
			s.cache.PutPartial(pt.file+"|"+qkey, rows, qcache.SizeOfPivotRows(rows))
		}
		parts[i] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	return dwarf.MergePivotGroups(parts...), nil
}

func (s *Store) topKPlanned(dim int, sels []dwarf.Selector, spec dwarf.TopKSpec) ([]dwarf.GroupEntry, error) {
	gen := s.gen.Load()
	key := qcache.KeyTopK(dim, sels, spec)
	if s.cache != nil {
		if v, ok := s.cache.GetResult(key, gen); ok {
			return v.([]dwarf.GroupEntry), nil
		}
	}
	groups, err := s.groupsAt(gen, dim, sels)
	if err != nil {
		return nil, err
	}
	entries := dwarf.TopKFromGroups(groups, spec)
	if s.cache != nil {
		s.cache.PutResult(key, entries, gen, qcache.SizeOfEntries(entries))
	}
	return entries, nil
}
