package cubestore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/dwarf"
)

// The manifest is the store's root of truth: a JSON file naming every live
// segment and the lowest WAL generation still covering unsealed tuples.
// Every state transition (seal, compaction) is committed by atomically
// replacing it — temp file, fsync, rename, directory fsync — so a crash
// leaves either the old state or the new one, never a mix. Files the
// manifest does not name are garbage by definition: segments not listed are
// orphans of an interrupted seal or compaction, WAL generations below
// WALGen were already sealed into a listed segment. Open deletes both.

const (
	manifestName    = "MANIFEST"
	manifestVersion = 1
	segPrefix       = "seg-"
	rollupPrefix    = "rollup-"
	segSuffix       = ".dwarf"
	tmpSuffix       = ".tmp"
)

// segmentMeta is one sealed segment's manifest entry.
type segmentMeta struct {
	// File is the segment's base name inside the store directory.
	File string `json:"file"`
	// Tuples is the number of source tuples sealed into the segment; it
	// determines the segment's compaction level.
	Tuples int `json:"tuples"`
	// Zones are the segment's per-dimension zone maps (min/max key plus
	// distinct-key count), duplicated from the file's v3 metadata section so
	// the planner prunes fan-out without opening the file. Absent for
	// segments sealed before zone maps existed — the planner then falls back
	// to the view's own maps, or scans unconditionally.
	Zones []dwarf.ZoneMap `json:"zones,omitempty"`
}

// rollupMeta is one rollup segment's manifest entry: a pre-aggregated cube
// over a subset of the store's dimensions, summarizing an exact set of
// sealed segments.
type rollupMeta struct {
	// File is the rollup's base name inside the store directory.
	File string `json:"file"`
	// Dims is the surviving dimension subset, in store dimension order.
	Dims []string `json:"dims"`
	// Covers lists the sealed segment files the rollup summarizes. The
	// rollup may only answer queries while every covered file is still
	// live — after a compaction replaces one, routing through the rollup
	// would double-count its tuples against the compacted output.
	Covers []string `json:"covers"`
	// Tuples is the rollup cube's own (coalesced) tuple count — the
	// planner's cost proxy when several rollups cover a query.
	Tuples int `json:"tuples"`
	// Zones are the rollup cube's zone maps over Dims (its own dimension
	// order, a subset of the store's).
	Zones []dwarf.ZoneMap `json:"zones,omitempty"`
}

// manifest is the persistent store state.
type manifest struct {
	Version int `json:"version"`
	// Dims is the cube dimension list, fixed at store creation.
	Dims []string `json:"dims"`
	// NextSegID names the next sealed, compacted or rollup file.
	NextSegID uint64 `json:"next_seg_id"`
	// WALGen is the lowest live WAL generation: generations below it are
	// sealed into segments and deleted on sight, generations at or above it
	// replay into the memtable on open.
	WALGen uint64 `json:"wal_gen"`
	// Generation counts visible state transitions (appends, seals,
	// compactions, rollup swaps). Persisted so reopening resumes a strictly
	// monotonic sequence; query caches stamp results with it.
	Generation uint64 `json:"generation"`
	// Segments lists the live segments, oldest first.
	Segments []segmentMeta `json:"segments"`
	// Rollups lists the live rollup segments, if any.
	Rollups []rollupMeta `json:"rollups,omitempty"`
}

func (m *manifest) clone() manifest {
	out := *m
	out.Dims = append([]string(nil), m.Dims...)
	out.Segments = append([]segmentMeta(nil), m.Segments...)
	out.Rollups = append([]rollupMeta(nil), m.Rollups...)
	return out
}

func segFileName(id uint64) string {
	return fmt.Sprintf("%s%016d%s", segPrefix, id, segSuffix)
}

func rollupFileName(id uint64) string {
	return fmt.Sprintf("%s%016d%s", rollupPrefix, id, segSuffix)
}

// isSegFile matches only the store's own seg-<16 digits>.dwarf names: the
// directory may be shared with foreign cube files (dwarfd -live serves
// static cubes from it), and orphan cleanup must never take those.
func isSegFile(name string) bool { return isStoreCubeFile(name, segPrefix) }

// isRollupFile matches the store's own rollup-<16 digits>.dwarf names.
func isRollupFile(name string) bool { return isStoreCubeFile(name, rollupPrefix) }

func isStoreCubeFile(name, prefix string) bool {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, segSuffix) {
		return false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, prefix), segSuffix)
	if len(mid) != 16 {
		return false
	}
	for _, c := range mid {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// isStoreTempFile matches only the store's own CreateTemp patterns —
// recovery must not delete a foreign .tmp file that happens to share the
// directory (dwarfd -live serves static cubes from it too).
func isStoreTempFile(name string) bool {
	if !strings.HasSuffix(name, tmpSuffix) {
		return false
	}
	return strings.HasPrefix(name, manifestName+"-") ||
		strings.HasPrefix(name, segPrefix) || strings.HasPrefix(name, rollupPrefix)
}

// Exists reports whether dir already holds a store (a manifest is
// present). Callers use it to decide whether Open needs Options.Dims.
func Exists(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, manifestName))
	return err == nil
}

// loadManifest reads dir's manifest; ok is false when none exists yet.
func loadManifest(dir string) (manifest, bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return manifest{}, false, nil
	}
	if err != nil {
		return manifest{}, false, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return manifest{}, false, fmt.Errorf("cubestore: manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return manifest{}, false, fmt.Errorf("cubestore: manifest version %d not supported", m.Version)
	}
	if len(m.Dims) == 0 {
		return manifest{}, false, fmt.Errorf("cubestore: manifest has no dimensions")
	}
	return m, true, nil
}

// writeManifest atomically replaces dir's manifest with m.
func writeManifest(dir string, m manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, manifestName+"-*"+tmpSuffix)
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, manifestName)); err != nil {
		return err
	}
	return fsyncDir(dir)
}

// writeSegmentFile atomically writes encoded cube bytes as a new segment
// file, durable before return.
func writeSegmentFile(dir, name string, encoded []byte) error {
	tmp, err := os.CreateTemp(dir, segPrefix+"*"+tmpSuffix)
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(encoded); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		return err
	}
	return fsyncDir(dir)
}
