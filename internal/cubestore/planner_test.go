package cubestore

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/dwarf"
	"repro/internal/query"
)

// Unit coverage for the planned query path's routing decisions: invalid
// arguments must skip the planner (so the kernel reports its usual error),
// a rollup whose cover is no longer a subset of the live segment set must
// fall back to the plain fan-out, and runIndexed must surface the
// lowest-index error regardless of which targets run concurrently.

func TestValidPivotArgs(t *testing.T) {
	all := make([]dwarf.Selector, 3)
	cases := []struct {
		name string
		dims []int
		sels []dwarf.Selector
		want bool
	}{
		{"ok single", []int{1}, all, true},
		{"ok multi", []int{0, 2}, all, true},
		{"ok all dims", []int{2, 1, 0}, all, true},
		{"empty dims", nil, all, false},
		{"dim out of range", []int{3}, all, false},
		{"negative dim", []int{-1}, all, false},
		{"duplicate dim", []int{1, 1}, all, false},
		{"too few selectors", []int{0}, all[:2], false},
		{"too many selectors", []int{0}, make([]dwarf.Selector, 4), false},
	}
	for _, c := range cases {
		if got := validPivotArgs(c.dims, c.sels, 3); got != c.want {
			t.Errorf("%s: validPivotArgs = %v, want %v", c.name, got, c.want)
		}
	}
}

// plannerState builds a storeState with the named segment files and one
// rollup over dims covering the listed files. Views stay nil: planTargets
// only routes, it never executes.
func plannerState(t *testing.T, storeDims []string, segFiles []string, rollupDims, covers []string) *storeState {
	t.Helper()
	st := &storeState{}
	for _, f := range segFiles {
		st.segs = append(st.segs, &segment{meta: segmentMeta{File: f, Tuples: 10}})
	}
	if rollupDims != nil {
		r, err := newRollupSeg(rollupMeta{
			File: "rollup-1.dwarf", Dims: rollupDims, Covers: covers, Tuples: 5,
		}, nil, nil, storeDims)
		if err != nil {
			t.Fatal(err)
		}
		st.rollups = append(st.rollups, r)
	}
	return st
}

func TestPlanTargetsRollupCoverGone(t *testing.T) {
	dims := []string{"Day", "Region", "Kind"}
	// The rollup summarizes seg-1 and seg-2, but seg-2 was compacted away:
	// routing through the rollup would double-count seg-1 against the
	// compaction output, so the planner must fall back to the plain
	// fan-out over the live segments.
	st := plannerState(t, dims, []string{"seg-1.dwarf", "seg-3.dwarf"},
		[]string{"Region", "Kind"}, []string{"seg-1.dwarf", "seg-2.dwarf"})
	sels := make([]dwarf.Selector, len(dims))
	targets, viaRollup := new(Store).planTargets(st, []int{1}, sels)
	if viaRollup {
		t.Fatal("partially covering rollup must not be planned in")
	}
	if len(targets) != 2 || targets[0].file != "seg-1.dwarf" || targets[1].file != "seg-3.dwarf" {
		t.Fatalf("fallback targets = %+v", targets)
	}
	for _, pt := range targets {
		if len(pt.dims) != 1 || pt.dims[0] != 1 || len(pt.sels) != len(dims) {
			t.Fatalf("fallback target must keep the original query: %+v", pt)
		}
	}
}

func TestPlanTargetsRollupRemap(t *testing.T) {
	dims := []string{"Day", "Region", "Kind"}
	st := plannerState(t, dims, []string{"seg-1.dwarf", "seg-3.dwarf"},
		[]string{"Region", "Kind"}, []string{"seg-1.dwarf"})
	sels := make([]dwarf.Selector, len(dims))
	sels[2] = dwarf.SelectKeys("bike")
	targets, viaRollup := new(Store).planTargets(st, []int{2}, sels)
	if !viaRollup {
		t.Fatal("fully covering rollup must be planned in")
	}
	// The rollup replaces seg-1 and its query is remapped to the rollup's
	// dimension order: store dim 2 (Kind) is rollup position 1, and only
	// the surviving dimensions' selectors ride along.
	if len(targets) != 2 || targets[0].file != "rollup-1.dwarf" || targets[1].file != "seg-3.dwarf" {
		t.Fatalf("rollup targets = %+v", targets)
	}
	rt := targets[0]
	if len(rt.dims) != 1 || rt.dims[0] != 1 {
		t.Fatalf("rollup grouped dims not remapped: %+v", rt.dims)
	}
	if len(rt.sels) != 2 || len(rt.sels[1].Keys) != 1 || rt.sels[1].Keys[0] != "bike" {
		t.Fatalf("rollup selectors not remapped: %+v", rt.sels)
	}
	// The uncovered segment still runs the original query.
	if got := targets[1]; got.dims[0] != 2 || len(got.sels) != 3 {
		t.Fatalf("uncovered segment query was remapped: %+v", got)
	}
}

func TestInvalidArgsSkipPlanner(t *testing.T) {
	// A store with a cache routes grouped queries through the planner —
	// but invalid arguments must take the plain path so the kernel
	// reports its usual error instead of the planner panicking or
	// answering a mis-shaped query.
	store, err := Open(t.TempDir(), Options{
		Dims:   []string{"A", "B"},
		NoSync: true, CacheBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if err := store.Append([]dwarf.Tuple{{Dims: []string{"x", "y"}, Measure: 1}}); err != nil {
		t.Fatal(err)
	}

	ref, err := dwarf.New([]string{"A", "B"}, []dwarf.Tuple{{Dims: []string{"x", "y"}, Measure: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for name, run := range map[string]func(q query.Querier) error{
		"groupby dim out of range": func(q query.Querier) error {
			_, err := q.GroupBy(7, make([]dwarf.Selector, 2))
			return err
		},
		"groupby bad selector count": func(q query.Querier) error {
			_, err := q.GroupBy(0, make([]dwarf.Selector, 1))
			return err
		},
		"pivot duplicate dim": func(q query.Querier) error {
			_, err := q.Pivot([]int{0, 0}, make([]dwarf.Selector, 2))
			return err
		},
		"topk negative dim": func(q query.Querier) error {
			_, err := q.TopK(-1, make([]dwarf.Selector, 2), dwarf.TopKSpec{K: 1})
			return err
		},
	} {
		storeErr, cubeErr := run(store), run(ref)
		if storeErr == nil {
			t.Fatalf("%s: store accepted invalid query", name)
		}
		if cubeErr == nil || storeErr.Error() != cubeErr.Error() {
			t.Fatalf("%s: store error %q, kernel error %q", name, storeErr, cubeErr)
		}
	}
}

func TestRunIndexedFirstError(t *testing.T) {
	errAt := func(fail ...int) func(int) error {
		bad := make(map[int]bool, len(fail))
		for _, i := range fail {
			bad[i] = true
		}
		return func(i int) error {
			if bad[i] {
				return fmt.Errorf("target %d failed", i)
			}
			return nil
		}
	}

	// Concurrent path (>2 targets): multiple failures surface as the
	// lowest-index one, deterministically, however the goroutines race.
	for round := 0; round < 20; round++ {
		err := runIndexed(6, errAt(4, 2, 5))
		if err == nil || err.Error() != "target 2 failed" {
			t.Fatalf("round %d: got %v, want lowest-index error", round, err)
		}
	}

	// All targets still run to completion despite an early failure — the
	// concurrent path has no cancellation, so every index is visited.
	var visited atomic.Int64
	err := runIndexed(5, func(i int) error {
		visited.Add(1)
		if i == 0 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("got %v", err)
	}
	if n := visited.Load(); runtime.GOMAXPROCS(0) > 1 && n != 5 {
		t.Fatalf("concurrent path visited %d of 5 targets", n)
	}

	// Serial path (<=2 targets): a failure stops the walk immediately.
	var serial atomic.Int64
	err = runIndexed(2, func(i int) error {
		serial.Add(1)
		return fmt.Errorf("target %d failed", i)
	})
	if err == nil || err.Error() != "target 0 failed" || serial.Load() != 1 {
		t.Fatalf("serial path: err=%v after %d calls", err, serial.Load())
	}

	if err := runIndexed(6, errAt()); err != nil {
		t.Fatalf("clean run: %v", err)
	}
}
