package sqlengine

import (
	"fmt"
	"strings"
)

// binding is one table bound in a FROM/JOIN clause under an alias.
type binding struct {
	alias string // lower-cased
	t     *table
}

// resolveColumn finds which binding a reference addresses. Unqualified
// names must be unique across bindings.
func resolveColumn(bindings []binding, ref sqlColumnRef) (int, string, error) {
	if ref.Qualifier != "" {
		q := strings.ToLower(ref.Qualifier)
		for i, b := range bindings {
			if b.alias == q {
				if _, err := b.t.def.Column(ref.Column); err != nil {
					return 0, "", err
				}
				return i, strings.ToLower(ref.Column), nil
			}
		}
		return 0, "", fmt.Errorf("%w: unknown table or alias %q", ErrNoSuchTable, ref.Qualifier)
	}
	found := -1
	for i, b := range bindings {
		if b.t.def.ColumnIndex(ref.Column) >= 0 {
			if found >= 0 {
				return 0, "", fmt.Errorf("%w: %s", ErrAmbiguousCol, ref.Column)
			}
			found = i
		}
	}
	if found < 0 {
		return 0, "", fmt.Errorf("%w: %s", ErrNoSuchColumn, ref.Column)
	}
	return found, strings.ToLower(ref.Column), nil
}

// execSelect runs a SELECT: base access path, left-deep nested-loop joins
// (with point/index lookups on the inner side when the join key allows),
// residual filters, then projection/aggregation.
func (db *DB) execSelect(st sqlSelect, b *sqlBinder) (*Rows, error) {
	baseT, err := db.table(st.Table)
	if err != nil {
		return nil, err
	}
	alias := st.Alias
	if alias == "" {
		alias = st.Table
	}
	bindings := []binding{{alias: strings.ToLower(alias), t: baseT}}
	for _, j := range st.Joins {
		jt, err := db.table(j.Table)
		if err != nil {
			return nil, err
		}
		a := j.Alias
		if a == "" {
			a = j.Table
		}
		bindings = append(bindings, binding{alias: strings.ToLower(a), t: jt})
	}

	// Bind WHERE values in order.
	type envPred struct {
		bindIdx int
		col     string
		op      string
		val     Datum
	}
	var preds []envPred
	for _, p := range st.Where {
		v, err := b.resolve(p.Val)
		if err != nil {
			return nil, err
		}
		bi, col, err := resolveColumn(bindings, p.Col)
		if err != nil {
			return nil, err
		}
		preds = append(preds, envPred{bindIdx: bi, col: col, op: p.Op, val: v})
	}

	// Base table access using its own predicates.
	var basePreds []boundPred
	baseConsumed := map[int]bool{}
	for i, p := range preds {
		if p.bindIdx == 0 {
			basePreds = append(basePreds, boundPred{col: p.col, op: p.op, val: p.val})
			baseConsumed[i] = true
		}
	}
	baseRows, _, err := db.accessPath(baseT, basePreds)
	if err != nil {
		return nil, err
	}
	// Apply all base preds now (accessPath consumed at most one).
	var envs [][]SQLRow
	for _, row := range baseRows {
		ok := true
		for _, p := range basePreds {
			if !datumPredHolds(row.Get(p.col), p.op, p.val) {
				ok = false
				break
			}
		}
		if ok {
			envs = append(envs, []SQLRow{row})
		}
	}

	// Joins, left-deep.
	for ji, j := range st.Joins {
		newIdx := ji + 1
		li, lcol, err := resolveColumn(bindings[:newIdx+1], j.Left)
		if err != nil {
			return nil, err
		}
		ri, rcol, err := resolveColumn(bindings[:newIdx+1], j.Right)
		if err != nil {
			return nil, err
		}
		var outerIdx int
		var outerCol, innerCol string
		switch {
		case li == newIdx && ri < newIdx:
			outerIdx, outerCol, innerCol = ri, rcol, lcol
		case ri == newIdx && li < newIdx:
			outerIdx, outerCol, innerCol = li, lcol, rcol
		default:
			return nil, fmt.Errorf("%w: JOIN ON must link the joined table to a prior table",
				ErrNotImplemented)
		}
		inner := bindings[newIdx].t

		// Prefetch the inner table once if there is no useful lookup path.
		usePK := strings.EqualFold(innerCol, inner.def.PK)
		_, useIdx := inner.indexes[innerCol]
		var prefetched []SQLRow
		if !usePK && !useIdx {
			all, _, err := db.accessPath(inner, nil)
			if err != nil {
				return nil, err
			}
			prefetched = all
		}

		var next [][]SQLRow
		for _, env := range envs {
			outerVal := env[outerIdx].Get(outerCol)
			if outerVal.IsNull() {
				continue
			}
			var matches []SQLRow
			switch {
			case usePK:
				cv, err := inner.def.Coerce(innerCol, outerVal)
				if err != nil {
					return nil, err
				}
				v, ok, err := inner.tree.Get(cv.KeyBytes())
				if err != nil {
					return nil, err
				}
				if ok {
					row, err := decodeSQLRow(inner.def, v)
					if err != nil {
						return nil, err
					}
					matches = []SQLRow{row}
				}
			case useIdx:
				rows, _, err := db.accessPath(inner, []boundPred{{col: innerCol, op: "=", val: outerVal}})
				if err != nil {
					return nil, err
				}
				matches = rows
			default:
				for _, row := range prefetched {
					if row.Get(innerCol).Equal(outerVal) ||
						(row.Get(innerCol).Compare(outerVal) == 0 && !row.Get(innerCol).IsNull()) {
						matches = append(matches, row)
					}
				}
			}
			for _, m := range matches {
				joined := make([]SQLRow, len(env)+1)
				copy(joined, env)
				joined[len(env)] = m
				next = append(next, joined)
			}
		}
		envs = next
	}

	// Residual predicates (non-base or unconsumed).
	var final [][]SQLRow
	for _, env := range envs {
		ok := true
		for i, p := range preds {
			if baseConsumed[i] {
				continue
			}
			if !datumPredHolds(env[p.bindIdx].Get(p.col), p.op, p.val) {
				ok = false
				break
			}
		}
		if ok {
			final = append(final, env)
		}
	}

	// Aggregates or plain projection.
	hasAgg := false
	for _, it := range st.Items {
		if it.Func != "" {
			hasAgg = true
		}
	}
	if hasAgg {
		for _, it := range st.Items {
			if it.Func == "" {
				return nil, fmt.Errorf("%w: aggregates cannot mix with plain columns", ErrNotImplemented)
			}
		}
		return db.aggregateRows(st.Items, bindings, final)
	}

	if st.Limit > 0 && len(final) > st.Limit {
		final = final[:st.Limit]
	}

	// Projection columns.
	type proj struct {
		bindIdx int
		col     string
	}
	var cols []string
	var projs []proj
	multi := len(bindings) > 1
	addAll := func(bi int) {
		for _, c := range bindings[bi].t.def.Columns {
			name := strings.ToLower(c.Name)
			if multi {
				name = bindings[bi].alias + "." + name
			}
			cols = append(cols, name)
			projs = append(projs, proj{bindIdx: bi, col: strings.ToLower(c.Name)})
		}
	}
	for _, it := range st.Items {
		switch {
		case it.Star && it.Col.Qualifier == "":
			for bi := range bindings {
				addAll(bi)
			}
		case it.Star:
			q := strings.ToLower(it.Col.Qualifier)
			found := false
			for bi, bd := range bindings {
				if bd.alias == q {
					addAll(bi)
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("%w: %s", ErrNoSuchTable, it.Col.Qualifier)
			}
		default:
			bi, col, err := resolveColumn(bindings, it.Col)
			if err != nil {
				return nil, err
			}
			name := col
			if multi {
				name = bindings[bi].alias + "." + col
			}
			cols = append(cols, name)
			projs = append(projs, proj{bindIdx: bi, col: col})
		}
	}
	out := &Rows{Columns: cols}
	for _, env := range final {
		row := make([]Datum, len(projs))
		for i, pr := range projs {
			row[i] = env[pr.bindIdx].Get(pr.col)
		}
		out.Data = append(out.Data, row)
	}
	return out, nil
}

func (db *DB) aggregateRows(items []sqlSelectItem, bindings []binding, envs [][]SQLRow) (*Rows, error) {
	out := &Rows{}
	var row []Datum
	for _, it := range items {
		name := it.Func + "(*)"
		var bi int
		var col string
		if !it.Star {
			var err error
			bi, col, err = resolveColumn(bindings, it.Col)
			if err != nil {
				return nil, err
			}
			name = it.Func + "(" + col + ")"
		}
		switch it.Func {
		case "count":
			n := 0
			for _, env := range envs {
				if it.Star || !env[bi].Get(col).IsNull() {
					n++
				}
			}
			row = append(row, DInt(int64(n)))
		case "min", "max":
			var best Datum
			for _, env := range envs {
				v := env[bi].Get(col)
				if v.IsNull() {
					continue
				}
				if best.IsNull() ||
					(it.Func == "min" && v.Compare(best) < 0) ||
					(it.Func == "max" && v.Compare(best) > 0) {
					best = v
				}
			}
			row = append(row, best)
		case "sum", "avg":
			var sum float64
			var n int64
			for _, env := range envs {
				v := env[bi].Get(col)
				switch v.Type {
				case TInt:
					sum += float64(v.Int)
					n++
				case TFloat:
					sum += v.Float
					n++
				case TNull:
				default:
					return nil, fmt.Errorf("%w: %s over non-numeric column", ErrNotImplemented, it.Func)
				}
			}
			if it.Func == "avg" {
				if n == 0 {
					row = append(row, DNull())
				} else {
					row = append(row, DFloat(sum/float64(n)))
				}
			} else {
				row = append(row, DFloat(sum))
			}
		default:
			return nil, fmt.Errorf("%w: aggregate %q", ErrNotImplemented, it.Func)
		}
		out.Columns = append(out.Columns, name)
	}
	out.Data = append(out.Data, row)
	return out, nil
}
