package sqlengine

// SQL AST. The dialect is the slice of MySQL the paper's experiments need:
// CREATE TABLE / INDEX, multi-row INSERT (bulk load), SELECT with equi-joins
// and simple predicates, UPDATE, DELETE, BEGIN/COMMIT, DROP TABLE.

type sqlStatement interface{ isSQLStatement() }

type sqlCreateTable struct {
	Name        string
	Columns     []ColumnDef
	PK          string
	IfNotExists bool
}

type sqlCreateIndex struct {
	IndexName   string
	Table       string
	Column      string
	IfNotExists bool
}

type sqlDropTable struct {
	Name     string
	IfExists bool
}

type sqlInsert struct {
	Table   string
	Columns []string
	// Rows is one expression list per VALUES tuple.
	Rows [][]sqlExpr
}

// sqlColumnRef is a possibly qualified column reference.
type sqlColumnRef struct {
	Qualifier string // table name or alias; empty = unqualified
	Column    string
}

type sqlSelectItem struct {
	Star bool
	Col  sqlColumnRef
	// Func is an optional aggregate (count/min/max/sum/avg); count(*) has
	// Star set.
	Func string
}

// sqlJoin is one JOIN clause: JOIN table [alias] ON left = right.
type sqlJoin struct {
	Table string
	Alias string
	Left  sqlColumnRef
	Right sqlColumnRef
}

type sqlSelect struct {
	Items []sqlSelectItem
	Table string
	Alias string
	Joins []sqlJoin
	Where []sqlPredicate
	Limit int // 0 = none
}

type sqlPredicate struct {
	Col sqlColumnRef
	Op  string // = != < <= > >=
	Val sqlExpr
}

type sqlAssignment struct {
	Column string
	Val    sqlExpr
}

type sqlUpdate struct {
	Table string
	Set   []sqlAssignment
	Where []sqlPredicate
}

type sqlDelete struct {
	Table string
	Where []sqlPredicate
}

type sqlBegin struct{}
type sqlCommit struct{}
type sqlRollback struct{}

// sqlExpr is a literal or placeholder.
type sqlExpr struct {
	Placeholder bool
	Datum       Datum
}

func (sqlCreateTable) isSQLStatement() {}
func (sqlCreateIndex) isSQLStatement() {}
func (sqlDropTable) isSQLStatement()   {}
func (sqlInsert) isSQLStatement()      {}
func (sqlSelect) isSQLStatement()      {}
func (sqlUpdate) isSQLStatement()      {}
func (sqlDelete) isSQLStatement()      {}
func (sqlBegin) isSQLStatement()       {}
func (sqlCommit) isSQLStatement()      {}
func (sqlRollback) isSQLStatement()    {}
