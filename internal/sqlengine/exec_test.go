package sqlengine

import (
	"errors"
	"os"
	"testing"
)

func TestDeleteAndUpdateWithoutWhere(t *testing.T) {
	db := testSQLDB(t, Options{})
	db.MustExec("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	for i := 0; i < 10; i++ {
		db.MustExec("INSERT INTO t (id, v) VALUES (?, ?)", i, 0)
	}
	// UPDATE with no WHERE touches every row.
	if n := db.MustExec("UPDATE t SET v = 7"); n != 10 {
		t.Errorf("updated %d", n)
	}
	rows, _ := db.Query("SELECT sum(v) FROM t")
	if rows.Data[0][0].Float != 70 {
		t.Errorf("sum = %v", rows.Data[0][0])
	}
	// DELETE with no WHERE empties the table.
	if n := db.MustExec("DELETE FROM t"); n != 10 {
		t.Errorf("deleted %d", n)
	}
	rows, _ = db.Query("SELECT count(*) FROM t")
	if rows.Data[0][0].Int != 0 {
		t.Errorf("count = %v", rows.Data[0][0])
	}
}

func TestBufferPoolEvictionCorrectness(t *testing.T) {
	// A cache far smaller than the data forces clean-page eviction and
	// re-reads; contents must survive.
	db := testSQLDB(t, Options{CachePages: 16})
	db.MustExec("CREATE TABLE t (id INT PRIMARY KEY, pad TEXT)")
	pad := make([]byte, 300)
	for i := range pad {
		pad[i] = 'p'
	}
	db.MustExec("BEGIN")
	for i := 0; i < 3000; i++ {
		db.MustExec("INSERT INTO t (id, pad) VALUES (?, ?)", i, string(pad))
	}
	db.MustExec("COMMIT")
	if err := db.Checkpoint(); err != nil { // pages become clean → evictable
		t.Fatal(err)
	}
	// Random point reads across the whole range.
	for _, id := range []int{0, 512, 1023, 1999, 2999} {
		rows, err := db.Query("SELECT pad FROM t WHERE id = ?", id)
		if err != nil || len(rows.Data) != 1 || len(rows.Data[0][0].Text) != 300 {
			t.Fatalf("id %d: %+v, %v", id, rows, err)
		}
	}
	rows, _ := db.Query("SELECT count(*) FROM t")
	if rows.Data[0][0].Int != 3000 {
		t.Errorf("count = %v", rows.Data[0][0])
	}
}

func TestAutoCheckpointBoundsWAL(t *testing.T) {
	db := testSQLDB(t, Options{CheckpointEvery: 32 << 10})
	db.MustExec("CREATE TABLE t (id INT PRIMARY KEY, pad TEXT)")
	pad := make([]byte, 500)
	for i := 0; i < 500; i++ {
		db.MustExec("INSERT INTO t (id, pad) VALUES (?, ?)", i, string(pad))
	}
	// The WAL must have been truncated by auto-checkpoints.
	if db.wal.size() > 64<<10 {
		t.Errorf("wal size = %d, auto checkpoint did not bound it", db.wal.size())
	}
	rows, _ := db.Query("SELECT count(*) FROM t")
	if rows.Data[0][0].Int != 500 {
		t.Errorf("count = %v", rows.Data[0][0])
	}
}

func TestJoinShapes(t *testing.T) {
	db := testSQLDB(t, Options{})
	db.MustExec("CREATE TABLE a (id INT PRIMARY KEY, bref INT)")
	db.MustExec("CREATE TABLE b (id INT PRIMARY KEY, v TEXT)")
	db.MustExec("INSERT INTO a (id, bref) VALUES (1, 10), (2, 20), (3, 99)")
	db.MustExec("INSERT INTO b (id, v) VALUES (10, 'x'), (20, 'y')")

	// Inner join drops unmatched rows.
	rows, err := db.Query("SELECT a.id, b.v FROM a JOIN b ON a.bref = b.id")
	if err != nil || len(rows.Data) != 2 {
		t.Fatalf("join = %+v, %v", rows, err)
	}
	// INNER JOIN keyword form.
	rows, err = db.Query("SELECT count(*) FROM a INNER JOIN b ON a.bref = b.id")
	if err != nil || rows.Data[0][0].Int != 2 {
		t.Fatalf("inner join = %+v, %v", rows, err)
	}
	// Join with no lookup path on the inner side (non-key join column):
	// prefetch + nested loop.
	db.MustExec("CREATE TABLE c (id INT PRIMARY KEY, tag INT)")
	db.MustExec("INSERT INTO c (id, tag) VALUES (1, 20), (2, 20), (3, 10)")
	rows, err = db.Query("SELECT count(*) FROM b JOIN c ON c.tag = b.id")
	if err != nil || rows.Data[0][0].Int != 3 {
		t.Fatalf("nested loop join = %+v, %v", rows, err)
	}
	// tbl.* projection.
	rows, err = db.Query("SELECT b.* FROM a JOIN b ON a.bref = b.id WHERE a.id = 1")
	if err != nil || len(rows.Columns) != 2 || rows.Data[0][1].Text != "x" {
		t.Fatalf("b.* = %+v, %v", rows, err)
	}
	// ON must reference the joined table.
	if _, err := db.Query("SELECT * FROM a JOIN b ON a.id = a.bref"); !errors.Is(err, ErrNotImplemented) {
		t.Errorf("bad ON: %v", err)
	}
	// Unknown alias in projection.
	if _, err := db.Query("SELECT z.id FROM a JOIN b ON a.bref = b.id"); !errors.Is(err, ErrNoSuchTable) {
		t.Errorf("unknown alias: %v", err)
	}
	if _, err := db.Query("SELECT z.* FROM a JOIN b ON a.bref = b.id"); !errors.Is(err, ErrNoSuchTable) {
		t.Errorf("unknown star alias: %v", err)
	}
}

func TestQueryOnExecAndViceVersa(t *testing.T) {
	db := testSQLDB(t, Options{})
	db.MustExec("CREATE TABLE t (id INT PRIMARY KEY)")
	if _, err := db.Query("INSERT INTO t (id) VALUES (1)"); err == nil {
		t.Error("Query of INSERT should fail")
	}
	// Exec of SELECT is allowed (row count unused) — ensure it does not
	// crash and binds args.
	if _, err := db.Exec("SELECT * FROM t WHERE id = ?", 1); err != nil {
		t.Errorf("Exec(SELECT): %v", err)
	}
	// Bind arity errors both ways.
	if _, err := db.Query("SELECT * FROM t WHERE id = ?"); !errors.Is(err, ErrSQLSyntax) {
		t.Errorf("missing bind: %v", err)
	}
	if _, err := db.Exec("INSERT INTO t (id) VALUES (?)", 1, 2); !errors.Is(err, ErrSQLSyntax) {
		t.Errorf("extra bind: %v", err)
	}
}

func TestAggregatesOverJoins(t *testing.T) {
	db := testSQLDB(t, Options{})
	db.MustExec("CREATE TABLE n (id INT PRIMARY KEY)")
	db.MustExec("CREATE TABLE e (id INT PRIMARY KEY, nid INT, w DOUBLE)")
	db.MustExec("INSERT INTO n (id) VALUES (1), (2)")
	db.MustExec("INSERT INTO e (id, nid, w) VALUES (1, 1, 2.5), (2, 1, 1.5), (3, 2, 4)")
	rows, err := db.Query("SELECT count(*), sum(e.w), min(e.w), max(e.w), avg(e.w) FROM n JOIN e ON e.nid = n.id")
	if err != nil {
		t.Fatal(err)
	}
	r := rows.Data[0]
	if r[0].Int != 3 || r[1].Float != 8 || r[2].Float != 1.5 || r[3].Float != 4 {
		t.Errorf("aggs = %+v", r)
	}
	if r[4].Float < 2.66 || r[4].Float > 2.67 {
		t.Errorf("avg = %v", r[4])
	}
	// Aggregate over empty set.
	rows, _ = db.Query("SELECT min(w), avg(w) FROM e WHERE w > 100")
	if !rows.Data[0][0].IsNull() || !rows.Data[0][1].IsNull() {
		t.Errorf("empty aggs = %+v", rows.Data[0])
	}
	// sum over TEXT errors.
	db.MustExec("CREATE TABLE s (id INT PRIMARY KEY, txt TEXT)")
	db.MustExec("INSERT INTO s (id, txt) VALUES (1, 'a')")
	if _, err := db.Query("SELECT sum(txt) FROM s"); !errors.Is(err, ErrNotImplemented) {
		t.Errorf("sum text: %v", err)
	}
	// Mixing aggregates and plain columns errors.
	if _, err := db.Query("SELECT id, count(*) FROM s"); !errors.Is(err, ErrNotImplemented) {
		t.Errorf("mixed: %v", err)
	}
}

func TestLargeTextRejected(t *testing.T) {
	db := testSQLDB(t, Options{})
	db.MustExec("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
	huge := make([]byte, 4096)
	if _, err := db.Exec("INSERT INTO t (id, v) VALUES (1, ?)", string(huge)); err == nil {
		t.Error("oversized row accepted (exceeds btree entry cap)")
	}
}

func TestManySmallTransactions(t *testing.T) {
	db := testSQLDB(t, Options{})
	db.MustExec("CREATE TABLE t (id INT PRIMARY KEY, g INT)")
	id := 0
	for txn := 0; txn < 20; txn++ {
		db.MustExec("BEGIN")
		for i := 0; i < 25; i++ {
			db.MustExec("INSERT INTO t (id, g) VALUES (?, ?)", id, txn)
			id++
		}
		db.MustExec("COMMIT")
	}
	rows, _ := db.Query("SELECT count(*) FROM t WHERE g = 7 ALLOW FILTERING")
	_ = rows
	rows2, err := db.Query("SELECT count(*) FROM t WHERE g = 7")
	if err != nil {
		t.Fatal(err)
	}
	if rows2.Data[0][0].Int != 25 {
		t.Errorf("count = %v", rows2.Data[0][0])
	}
}

func TestCreateIndexViaSQLOnMissing(t *testing.T) {
	db := testSQLDB(t, Options{})
	if _, err := db.Exec("CREATE INDEX i ON missing (c)"); !errors.Is(err, ErrNoSuchTable) {
		t.Errorf("index on missing table: %v", err)
	}
	db.MustExec("CREATE TABLE t (id INT PRIMARY KEY)")
	if _, err := db.Exec("CREATE INDEX i ON t (nope)"); !errors.Is(err, ErrNoSuchColumn) {
		t.Errorf("index on missing column: %v", err)
	}
	db.MustExec("CREATE UNIQUE INDEX u ON t (id)")
	if _, err := db.Exec("CREATE INDEX IF NOT EXISTS u2 ON t (id)"); err != nil {
		t.Errorf("if-not-exists index: %v", err)
	}
}

func TestDatumHelpers(t *testing.T) {
	if DInt(5).Compare(DFloat(5.5)) >= 0 {
		t.Error("int/float comparison broken")
	}
	if DFloat(2).Compare(DInt(1)) <= 0 {
		t.Error("float/int comparison broken")
	}
	if got := DText("O'Neil").String(); got != "'O''Neil'" {
		t.Errorf("text literal = %q", got)
	}
	if DNull().String() != "NULL" || !DNull().IsNull() {
		t.Error("null datum broken")
	}
	if DBool(true).String() != "TRUE" {
		t.Error("bool literal broken")
	}
	for _, typ := range []string{"INT", "TEXT", "BOOLEAN", "DOUBLE", "VARCHAR", "bigint"} {
		if _, err := ParseDType(typ); err != nil {
			t.Errorf("ParseDType(%s): %v", typ, err)
		}
	}
	if _, err := ParseDType("BLOB"); err == nil {
		t.Error("unknown type accepted")
	}
	// Row codec round trip with every type and NULLs.
	def, err := NewTableDef("t", []ColumnDef{
		{Name: "i", Type: TInt}, {Name: "s", Type: TText},
		{Name: "b", Type: TBool}, {Name: "f", Type: TFloat},
	}, "i")
	if err != nil {
		t.Fatal(err)
	}
	row := SQLRow{"i": DInt(-9), "b": DBool(true)}
	dec, err := decodeSQLRow(def, encodeSQLRow(def, row))
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Get("i").Equal(DInt(-9)) || !dec.Get("b").Equal(DBool(true)) {
		t.Errorf("dec = %v", dec)
	}
	if !dec.Get("s").IsNull() || !dec.Get("f").IsNull() {
		t.Errorf("nulls lost: %v", dec)
	}
	if _, err := decodeSQLRow(def, nil); err == nil {
		t.Error("nil row decoded")
	}
}

func TestKeyBytesOrdering(t *testing.T) {
	pairs := [][2]Datum{
		{DInt(-5), DInt(3)},
		{DInt(3), DInt(300)},
		{DFloat(-2.5), DFloat(-1.5)},
		{DFloat(-1.5), DFloat(0)},
		{DFloat(0), DFloat(7.25)},
		{DText("abc"), DText("abd")},
		{DBool(false), DBool(true)},
	}
	for _, p := range pairs {
		a, b := p[0].KeyBytes(), p[1].KeyBytes()
		if string(a) >= string(b) {
			t.Errorf("KeyBytes order broken: %v !< %v", p[0], p[1])
		}
	}
}

func TestSQLLexerQuirks(t *testing.T) {
	db := testSQLDB(t, Options{})
	db.MustExec("CREATE TABLE t (id INT PRIMARY KEY, v TEXT NOT NULL)")
	// VARCHAR(255) length suffix accepted.
	db.MustExec("CREATE TABLE u (id INT PRIMARY KEY, name VARCHAR(255))")
	// <> as inequality.
	db.MustExec("INSERT INTO t (id, v) VALUES (1, 'a'), (2, 'b')")
	rows, err := db.Query("SELECT id FROM t WHERE v <> 'a'")
	if err != nil || len(rows.Data) != 1 || rows.Data[0][0].Int != 2 {
		t.Fatalf("<> = %+v, %v", rows, err)
	}
	for _, bad := range []string{
		"SELECT * FROM t WHERE v ! 'a'",
		"INSERT INTO t (id, v) VALUES (1, 'unclosed)",
		"SELECT `broken FROM t",
		"INSERT INTO t (id) VALUES (- )",
	} {
		if _, err := db.Exec(bad); !errors.Is(err, ErrSQLSyntax) {
			t.Errorf("%q: %v", bad, err)
		}
	}
}

func TestScanOrderAfterMixedWorkload(t *testing.T) {
	db := testSQLDB(t, Options{})
	db.MustExec("CREATE TABLE t (id INT PRIMARY KEY)")
	// Insert out of order, delete some, reinsert.
	order := []int{5, 1, 9, 3, 7, 2, 8, 0, 6, 4}
	for _, id := range order {
		db.MustExec("INSERT INTO t (id) VALUES (?)", id)
	}
	db.MustExec("DELETE FROM t WHERE id = 3")
	db.MustExec("DELETE FROM t WHERE id = 7")
	db.MustExec("INSERT INTO t (id) VALUES (3)")
	rows, err := db.Query("SELECT id FROM t")
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 1, 2, 3, 4, 5, 6, 8, 9}
	if len(rows.Data) != len(want) {
		t.Fatalf("rows = %+v", rows.Data)
	}
	for i, r := range rows.Data {
		if r[0].Int != want[i] {
			t.Fatalf("scan order: got %v", rows.Data)
		}
	}
}

func TestOpenRejectsCorruptCatalog(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE TABLE t (id INT PRIMARY KEY)")
	db.Close()
	if err := osWriteFile(dir+"/catalog.json", []byte("{broken")); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Error("corrupt catalog opened")
	}
}

func osWriteFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
