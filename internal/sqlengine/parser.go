package sqlengine

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// ErrSQLSyntax wraps lexical and grammatical errors.
var ErrSQLSyntax = errors.New("sqlengine: syntax error")

func sqlErrf(pos int, format string, args ...any) error {
	return fmt.Errorf("%w at offset %d: %s", ErrSQLSyntax, pos, fmt.Sprintf(format, args...))
}

type sqlTokKind int

const (
	sEOF sqlTokKind = iota
	sIdent
	sInt
	sFloat
	sString
	sComma
	sDot
	sLParen
	sRParen
	sStar
	sEq
	sNe
	sLt
	sLe
	sGt
	sGe
	sQuestion
	sSemi
)

type sqlToken struct {
	kind sqlTokKind
	text string
	pos  int
}

func sqlLex(src string) ([]sqlToken, error) {
	var toks []sqlToken
	i := 0
	emit := func(k sqlTokKind, text string, pos int) { toks = append(toks, sqlToken{k, text, pos}) }
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == ',':
			emit(sComma, ",", i)
			i++
		case c == '.':
			emit(sDot, ".", i)
			i++
		case c == ';':
			emit(sSemi, ";", i)
			i++
		case c == '(':
			emit(sLParen, "(", i)
			i++
		case c == ')':
			emit(sRParen, ")", i)
			i++
		case c == '*':
			emit(sStar, "*", i)
			i++
		case c == '?':
			emit(sQuestion, "?", i)
			i++
		case c == '=':
			emit(sEq, "=", i)
			i++
		case c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				emit(sNe, "!=", i)
				i += 2
			} else {
				return nil, sqlErrf(i, "unexpected '!'")
			}
		case c == '<':
			switch {
			case i+1 < len(src) && src[i+1] == '=':
				emit(sLe, "<=", i)
				i += 2
			case i+1 < len(src) && src[i+1] == '>':
				emit(sNe, "<>", i)
				i += 2
			default:
				emit(sLt, "<", i)
				i++
			}
		case c == '>':
			if i+1 < len(src) && src[i+1] == '=' {
				emit(sGe, ">=", i)
				i += 2
			} else {
				emit(sGt, ">", i)
				i++
			}
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < len(src) {
				if src[i] == '\'' {
					if i+1 < len(src) && src[i+1] == '\'' {
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(src[i])
				i++
			}
			if !closed {
				return nil, sqlErrf(start, "unterminated string")
			}
			emit(sString, sb.String(), start)
		case c == '`': // MySQL quoted identifier
			start := i
			i++
			j := strings.IndexByte(src[i:], '`')
			if j < 0 {
				return nil, sqlErrf(start, "unterminated quoted identifier")
			}
			emit(sIdent, src[i:i+j], start)
			i += j + 1
		case c == '-' || c >= '0' && c <= '9':
			start := i
			if c == '-' {
				// Could be a comment "--" or a negative number.
				if i+1 < len(src) && src[i+1] == '-' {
					for i < len(src) && src[i] != '\n' {
						i++
					}
					continue
				}
				i++
				if i >= len(src) || src[i] < '0' || src[i] > '9' {
					return nil, sqlErrf(start, "unexpected '-'")
				}
			}
			isFloat := false
			for i < len(src) && (src[i] >= '0' && src[i] <= '9' || src[i] == '.' || src[i] == 'e' || src[i] == 'E' ||
				(isFloat && (src[i] == '+' || src[i] == '-') && (src[i-1] == 'e' || src[i-1] == 'E'))) {
				if src[i] == '.' || src[i] == 'e' || src[i] == 'E' {
					isFloat = true
				}
				i++
			}
			if isFloat {
				emit(sFloat, src[start:i], start)
			} else {
				emit(sInt, src[start:i], start)
			}
		case c == '_' || unicode.IsLetter(rune(c)):
			start := i
			for i < len(src) && (src[i] == '_' || unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i]))) {
				i++
			}
			emit(sIdent, src[start:i], start)
		default:
			return nil, sqlErrf(i, "unexpected character %q", c)
		}
	}
	toks = append(toks, sqlToken{sEOF, "", len(src)})
	return toks, nil
}

// parseSQL parses one statement.
func parseSQL(src string) (sqlStatement, error) {
	toks, err := sqlLex(src)
	if err != nil {
		return nil, err
	}
	p := &sqlParser{toks: toks}
	stmt, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(sSemi)
	if p.cur().kind != sEOF {
		return nil, sqlErrf(p.cur().pos, "unexpected %q after statement", p.cur().text)
	}
	return stmt, nil
}

type sqlParser struct {
	toks []sqlToken
	pos  int
}

func (p *sqlParser) cur() sqlToken  { return p.toks[p.pos] }
func (p *sqlParser) next() sqlToken { t := p.toks[p.pos]; p.pos++; return t }

func (p *sqlParser) accept(k sqlTokKind) bool {
	if p.cur().kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *sqlParser) kw(word string) bool {
	if p.cur().kind == sIdent && strings.EqualFold(p.cur().text, word) {
		p.pos++
		return true
	}
	return false
}

func (p *sqlParser) peekKw(word string) bool {
	return p.cur().kind == sIdent && strings.EqualFold(p.cur().text, word)
}

func (p *sqlParser) expect(k sqlTokKind) (sqlToken, error) {
	if p.cur().kind != k {
		return sqlToken{}, sqlErrf(p.cur().pos, "expected token kind %d, got %q", k, p.cur().text)
	}
	return p.next(), nil
}

func (p *sqlParser) expectKw(word string) error {
	if !p.kw(word) {
		return sqlErrf(p.cur().pos, "expected %q, got %q", word, p.cur().text)
	}
	return nil
}

func (p *sqlParser) statement() (sqlStatement, error) {
	switch {
	case p.kw("CREATE"):
		switch {
		case p.kw("TABLE"):
			return p.createTable()
		case p.kw("INDEX"):
			return p.createIndex()
		case p.kw("UNIQUE"): // CREATE UNIQUE INDEX — treated as a plain index
			if err := p.expectKw("INDEX"); err != nil {
				return nil, err
			}
			return p.createIndex()
		default:
			return nil, sqlErrf(p.cur().pos, "expected TABLE or INDEX after CREATE")
		}
	case p.kw("DROP"):
		if err := p.expectKw("TABLE"); err != nil {
			return nil, err
		}
		ifExists := false
		if p.kw("IF") {
			if err := p.expectKw("EXISTS"); err != nil {
				return nil, err
			}
			ifExists = true
		}
		name, err := p.expect(sIdent)
		if err != nil {
			return nil, err
		}
		return sqlDropTable{Name: name.text, IfExists: ifExists}, nil
	case p.kw("INSERT"):
		return p.insert()
	case p.kw("SELECT"):
		return p.selectStmt()
	case p.kw("UPDATE"):
		return p.update()
	case p.kw("DELETE"):
		return p.delete()
	case p.kw("BEGIN"), p.kw("START"):
		p.kw("TRANSACTION") // optional
		return sqlBegin{}, nil
	case p.kw("COMMIT"):
		return sqlCommit{}, nil
	case p.kw("ROLLBACK"):
		return sqlRollback{}, nil
	default:
		return nil, sqlErrf(p.cur().pos, "unknown statement start %q", p.cur().text)
	}
}

func (p *sqlParser) ifNotExists() (bool, error) {
	if p.kw("IF") {
		if err := p.expectKw("NOT"); err != nil {
			return false, err
		}
		if err := p.expectKw("EXISTS"); err != nil {
			return false, err
		}
		return true, nil
	}
	return false, nil
}

func (p *sqlParser) createTable() (sqlStatement, error) {
	ine, err := p.ifNotExists()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(sIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(sLParen); err != nil {
		return nil, err
	}
	ct := sqlCreateTable{Name: name.text, IfNotExists: ine}
	for {
		if p.kw("PRIMARY") {
			if err := p.expectKw("KEY"); err != nil {
				return nil, err
			}
			if _, err := p.expect(sLParen); err != nil {
				return nil, err
			}
			col, err := p.expect(sIdent)
			if err != nil {
				return nil, err
			}
			if ct.PK != "" && !strings.EqualFold(ct.PK, col.text) {
				return nil, sqlErrf(col.pos, "conflicting PRIMARY KEY declarations")
			}
			ct.PK = col.text
			if _, err := p.expect(sRParen); err != nil {
				return nil, err
			}
		} else {
			col, err := p.expect(sIdent)
			if err != nil {
				return nil, err
			}
			typTok, err := p.expect(sIdent)
			if err != nil {
				return nil, err
			}
			typ, err := ParseDType(typTok.text)
			if err != nil {
				return nil, sqlErrf(typTok.pos, "%v", err)
			}
			// Optional length suffix: VARCHAR(255).
			if p.accept(sLParen) {
				if _, err := p.expect(sInt); err != nil {
					return nil, err
				}
				if _, err := p.expect(sRParen); err != nil {
					return nil, err
				}
			}
			// Optional NOT NULL (accepted, not enforced separately).
			if p.kw("NOT") {
				if err := p.expectKw("NULL"); err != nil {
					return nil, err
				}
			}
			ct.Columns = append(ct.Columns, ColumnDef{Name: col.text, Type: typ})
			if p.kw("PRIMARY") {
				if err := p.expectKw("KEY"); err != nil {
					return nil, err
				}
				if ct.PK != "" && !strings.EqualFold(ct.PK, col.text) {
					return nil, sqlErrf(col.pos, "conflicting PRIMARY KEY declarations")
				}
				ct.PK = col.text
			}
		}
		if p.accept(sComma) {
			continue
		}
		if _, err := p.expect(sRParen); err != nil {
			return nil, err
		}
		break
	}
	if ct.PK == "" {
		return nil, sqlErrf(p.cur().pos, "CREATE TABLE needs a PRIMARY KEY")
	}
	return ct, nil
}

func (p *sqlParser) createIndex() (sqlStatement, error) {
	ine, err := p.ifNotExists()
	if err != nil {
		return nil, err
	}
	ci := sqlCreateIndex{IfNotExists: ine}
	if p.cur().kind == sIdent && !strings.EqualFold(p.cur().text, "ON") {
		ci.IndexName = p.next().text
	}
	if err := p.expectKw("ON"); err != nil {
		return nil, err
	}
	tbl, err := p.expect(sIdent)
	if err != nil {
		return nil, err
	}
	ci.Table = tbl.text
	if _, err := p.expect(sLParen); err != nil {
		return nil, err
	}
	col, err := p.expect(sIdent)
	if err != nil {
		return nil, err
	}
	ci.Column = col.text
	if _, err := p.expect(sRParen); err != nil {
		return nil, err
	}
	return ci, nil
}

func (p *sqlParser) insert() (sqlStatement, error) {
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	tbl, err := p.expect(sIdent)
	if err != nil {
		return nil, err
	}
	ins := sqlInsert{Table: tbl.text}
	if _, err := p.expect(sLParen); err != nil {
		return nil, err
	}
	for {
		col, err := p.expect(sIdent)
		if err != nil {
			return nil, err
		}
		ins.Columns = append(ins.Columns, col.text)
		if p.accept(sComma) {
			continue
		}
		break
	}
	if _, err := p.expect(sRParen); err != nil {
		return nil, err
	}
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(sLParen); err != nil {
			return nil, err
		}
		var row []sqlExpr
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.accept(sComma) {
				continue
			}
			break
		}
		if _, err := p.expect(sRParen); err != nil {
			return nil, err
		}
		if len(row) != len(ins.Columns) {
			return nil, sqlErrf(p.cur().pos, "INSERT row has %d values for %d columns",
				len(row), len(ins.Columns))
		}
		ins.Rows = append(ins.Rows, row)
		if p.accept(sComma) {
			continue
		}
		break
	}
	return ins, nil
}

var sqlAggFuncs = map[string]bool{"count": true, "min": true, "max": true, "sum": true, "avg": true}

func (p *sqlParser) columnRef() (sqlColumnRef, error) {
	first, err := p.expect(sIdent)
	if err != nil {
		return sqlColumnRef{}, err
	}
	if p.accept(sDot) {
		second, err := p.expect(sIdent)
		if err != nil {
			return sqlColumnRef{}, err
		}
		return sqlColumnRef{Qualifier: first.text, Column: second.text}, nil
	}
	return sqlColumnRef{Column: first.text}, nil
}

func (p *sqlParser) selectStmt() (sqlStatement, error) {
	sel := sqlSelect{}
	for {
		switch {
		case p.accept(sStar):
			sel.Items = append(sel.Items, sqlSelectItem{Star: true})
		case p.cur().kind == sIdent && p.toks[p.pos+1].kind == sDot &&
			p.toks[p.pos+2].kind == sStar:
			// tbl.* projection.
			q := p.next().text
			p.next() // .
			p.next() // *
			sel.Items = append(sel.Items, sqlSelectItem{Star: true, Col: sqlColumnRef{Qualifier: q}})
		case p.cur().kind == sIdent && sqlAggFuncs[strings.ToLower(p.cur().text)] &&
			p.toks[p.pos+1].kind == sLParen:
			fn := strings.ToLower(p.next().text)
			p.next() // (
			item := sqlSelectItem{Func: fn}
			if p.accept(sStar) {
				item.Star = true
			} else {
				ref, err := p.columnRef()
				if err != nil {
					return nil, err
				}
				item.Col = ref
			}
			if _, err := p.expect(sRParen); err != nil {
				return nil, err
			}
			sel.Items = append(sel.Items, item)
		default:
			ref, err := p.columnRef()
			if err != nil {
				return nil, err
			}
			sel.Items = append(sel.Items, sqlSelectItem{Col: ref})
		}
		if p.accept(sComma) {
			continue
		}
		break
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	tbl, err := p.expect(sIdent)
	if err != nil {
		return nil, err
	}
	sel.Table = tbl.text
	if p.cur().kind == sIdent && !p.peekAnyKw("JOIN", "INNER", "WHERE", "LIMIT") {
		sel.Alias = p.next().text
	}
	for {
		if p.kw("INNER") {
			if err := p.expectKw("JOIN"); err != nil {
				return nil, err
			}
		} else if !p.kw("JOIN") {
			break
		}
		j := sqlJoin{}
		jt, err := p.expect(sIdent)
		if err != nil {
			return nil, err
		}
		j.Table = jt.text
		if p.cur().kind == sIdent && !p.peekAnyKw("ON") {
			j.Alias = p.next().text
		}
		if err := p.expectKw("ON"); err != nil {
			return nil, err
		}
		left, err := p.columnRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(sEq); err != nil {
			return nil, err
		}
		right, err := p.columnRef()
		if err != nil {
			return nil, err
		}
		j.Left, j.Right = left, right
		sel.Joins = append(sel.Joins, j)
	}
	if p.kw("WHERE") {
		preds, err := p.predicates()
		if err != nil {
			return nil, err
		}
		sel.Where = preds
	}
	if p.kw("LIMIT") {
		t, err := p.expect(sInt)
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, sqlErrf(t.pos, "bad LIMIT")
		}
		sel.Limit = n
	}
	return sel, nil
}

func (p *sqlParser) peekAnyKw(words ...string) bool {
	for _, w := range words {
		if p.peekKw(w) {
			return true
		}
	}
	return false
}

func (p *sqlParser) update() (sqlStatement, error) {
	tbl, err := p.expect(sIdent)
	if err != nil {
		return nil, err
	}
	up := sqlUpdate{Table: tbl.text}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.expect(sIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(sEq); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		up.Set = append(up.Set, sqlAssignment{Column: col.text, Val: e})
		if p.accept(sComma) {
			continue
		}
		break
	}
	if p.kw("WHERE") {
		preds, err := p.predicates()
		if err != nil {
			return nil, err
		}
		up.Where = preds
	}
	return up, nil
}

func (p *sqlParser) delete() (sqlStatement, error) {
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	tbl, err := p.expect(sIdent)
	if err != nil {
		return nil, err
	}
	del := sqlDelete{Table: tbl.text}
	if p.kw("WHERE") {
		preds, err := p.predicates()
		if err != nil {
			return nil, err
		}
		del.Where = preds
	}
	return del, nil
}

func (p *sqlParser) predicates() ([]sqlPredicate, error) {
	var preds []sqlPredicate
	for {
		ref, err := p.columnRef()
		if err != nil {
			return nil, err
		}
		var op string
		switch {
		case p.accept(sEq):
			op = "="
		case p.accept(sNe):
			op = "!="
		case p.accept(sLe):
			op = "<="
		case p.accept(sLt):
			op = "<"
		case p.accept(sGe):
			op = ">="
		case p.accept(sGt):
			op = ">"
		default:
			return nil, sqlErrf(p.cur().pos, "expected comparison operator, got %q", p.cur().text)
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		preds = append(preds, sqlPredicate{Col: ref, Op: op, Val: e})
		if p.kw("AND") {
			continue
		}
		return preds, nil
	}
}

func (p *sqlParser) expr() (sqlExpr, error) {
	t := p.cur()
	switch t.kind {
	case sQuestion:
		p.next()
		return sqlExpr{Placeholder: true}, nil
	case sInt:
		p.next()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return sqlExpr{}, sqlErrf(t.pos, "bad integer %q", t.text)
		}
		return sqlExpr{Datum: DInt(v)}, nil
	case sFloat:
		p.next()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return sqlExpr{}, sqlErrf(t.pos, "bad float %q", t.text)
		}
		return sqlExpr{Datum: DFloat(v)}, nil
	case sString:
		p.next()
		return sqlExpr{Datum: DText(t.text)}, nil
	case sIdent:
		switch {
		case strings.EqualFold(t.text, "TRUE"):
			p.next()
			return sqlExpr{Datum: DBool(true)}, nil
		case strings.EqualFold(t.text, "FALSE"):
			p.next()
			return sqlExpr{Datum: DBool(false)}, nil
		case strings.EqualFold(t.text, "NULL"):
			p.next()
			return sqlExpr{Datum: DNull()}, nil
		}
	}
	return sqlExpr{}, sqlErrf(t.pos, "expected literal or '?', got %q", t.text)
}
