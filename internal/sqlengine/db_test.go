package sqlengine

import (
	"errors"
	"fmt"
	"testing"
)

func testSQLDB(t *testing.T, opts Options) *DB {
	t.Helper()
	db, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestCreateInsertSelect(t *testing.T) {
	db := testSQLDB(t, Options{})
	db.MustExec(`CREATE TABLE dwarf_cell (
		id INT PRIMARY KEY, name TEXT, leaf BOOLEAN, measure DOUBLE)`)
	n := db.MustExec(`INSERT INTO dwarf_cell (id, name, leaf, measure) VALUES
		(1, 'Fenian St', TRUE, 3),
		(2, 'Pearse St', TRUE, 5.5),
		(3, 'Dublin', FALSE, NULL)`)
	if n != 3 {
		t.Fatalf("inserted %d", n)
	}
	rows, err := db.Query("SELECT name, measure FROM dwarf_cell WHERE id = 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 || rows.Data[0][0].Text != "Pearse St" || rows.Data[0][1].Float != 5.5 {
		t.Errorf("rows = %+v", rows)
	}
	// Full scan in PK order.
	rows, err = db.Query("SELECT id FROM dwarf_cell")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 3 || rows.Data[0][0].Int != 1 || rows.Data[2][0].Int != 3 {
		t.Errorf("scan = %+v", rows.Data)
	}
	// NULL round trip.
	rows, _ = db.Query("SELECT measure FROM dwarf_cell WHERE id = 3")
	if !rows.Data[0][0].IsNull() {
		t.Errorf("NULL = %v", rows.Data[0][0])
	}
}

func TestDuplicateKeyRejected(t *testing.T) {
	db := testSQLDB(t, Options{})
	db.MustExec("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
	db.MustExec("INSERT INTO t (id, v) VALUES (1, 'a')")
	if _, err := db.Exec("INSERT INTO t (id, v) VALUES (1, 'b')"); !errors.Is(err, ErrDuplicateKey) {
		t.Errorf("dup: %v", err)
	}
	// The failed statement must not have half-applied.
	rows, _ := db.Query("SELECT v FROM t WHERE id = 1")
	if rows.Data[0][0].Text != "a" {
		t.Errorf("original row damaged: %v", rows.Data)
	}
}

func TestUpdateDelete(t *testing.T) {
	db := testSQLDB(t, Options{})
	db.MustExec("CREATE TABLE t (id INT PRIMARY KEY, v TEXT, n INT)")
	for i := 0; i < 20; i++ {
		db.MustExec("INSERT INTO t (id, v, n) VALUES (?, ?, ?)", i, "x", i%4)
	}
	n := db.MustExec("UPDATE t SET v = 'updated' WHERE n = 2")
	if n != 5 {
		t.Errorf("updated %d rows", n)
	}
	rows, _ := db.Query("SELECT count(*) FROM t WHERE v = 'updated'")
	if rows.Data[0][0].Int != 5 {
		t.Errorf("count = %v", rows.Data[0][0])
	}
	// UPDATE merges, does not clear unmentioned columns.
	rows, _ = db.Query("SELECT n FROM t WHERE id = 2")
	if rows.Data[0][0].Int != 2 {
		t.Errorf("merge lost n: %v", rows.Data[0][0])
	}
	// PK change moves the row.
	db.MustExec("UPDATE t SET id = 100 WHERE id = 0")
	rows, _ = db.Query("SELECT id FROM t WHERE id = 100")
	if len(rows.Data) != 1 {
		t.Errorf("moved row missing")
	}
	rows, _ = db.Query("SELECT id FROM t WHERE id = 0")
	if len(rows.Data) != 0 {
		t.Errorf("old key still present")
	}

	n = db.MustExec("DELETE FROM t WHERE n = 3")
	if n != 5 {
		t.Errorf("deleted %d", n)
	}
	rows, _ = db.Query("SELECT count(*) FROM t")
	if rows.Data[0][0].Int != 15 {
		t.Errorf("count after delete = %v", rows.Data[0][0])
	}
}

func TestSecondaryIndexMaintenance(t *testing.T) {
	db := testSQLDB(t, Options{})
	db.MustExec("CREATE TABLE cells (id INT PRIMARY KEY, node_id INT, v TEXT)")
	for i := 0; i < 40; i++ {
		db.MustExec("INSERT INTO cells (id, node_id, v) VALUES (?, ?, 'x')", i, i%5)
	}
	// Index created after data: back-fill.
	db.MustExec("CREATE INDEX by_node ON cells (node_id)")
	if _, err := db.Exec("CREATE INDEX by_node2 ON cells (node_id)"); !errors.Is(err, ErrIndexExists) {
		t.Errorf("dup index: %v", err)
	}
	rows, _ := db.Query("SELECT id FROM cells WHERE node_id = 3")
	if len(rows.Data) != 8 {
		t.Errorf("index lookup = %d rows", len(rows.Data))
	}
	// Update moves index entries.
	db.MustExec("UPDATE cells SET node_id = 99 WHERE id = 3")
	rows, _ = db.Query("SELECT id FROM cells WHERE node_id = 3")
	if len(rows.Data) != 7 {
		t.Errorf("after update: %d rows", len(rows.Data))
	}
	rows, _ = db.Query("SELECT id FROM cells WHERE node_id = 99")
	if len(rows.Data) != 1 {
		t.Errorf("new value: %d rows", len(rows.Data))
	}
	// Delete removes index entries.
	db.MustExec("DELETE FROM cells WHERE id = 3")
	rows, _ = db.Query("SELECT id FROM cells WHERE node_id = 99")
	if len(rows.Data) != 0 {
		t.Errorf("after delete: %d rows", len(rows.Data))
	}
}

func TestJoins(t *testing.T) {
	db := testSQLDB(t, Options{})
	// The Fig. 4 shape: nodes, cells, and the join table between them.
	db.MustExec("CREATE TABLE nodes (id INT PRIMARY KEY, root BOOLEAN)")
	db.MustExec("CREATE TABLE cells (id INT PRIMARY KEY, name TEXT)")
	db.MustExec("CREATE TABLE node_children (id INT PRIMARY KEY, node_id INT, cell_id INT)")
	db.MustExec("INSERT INTO nodes (id, root) VALUES (1, TRUE), (2, FALSE)")
	db.MustExec("INSERT INTO cells (id, name) VALUES (10, 'Ireland'), (11, 'France'), (12, 'Dublin')")
	db.MustExec(`INSERT INTO node_children (id, node_id, cell_id) VALUES
		(1, 1, 10), (2, 1, 11), (3, 2, 12)`)

	// Two-table join through the join table, inner side by PK.
	rows, err := db.Query(`SELECT c.name FROM node_children nc
		JOIN cells c ON nc.cell_id = c.id WHERE nc.node_id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 2 {
		t.Fatalf("join rows = %+v", rows.Data)
	}
	got := map[string]bool{}
	for _, r := range rows.Data {
		got[r[0].Text] = true
	}
	if !got["Ireland"] || !got["France"] {
		t.Errorf("join names = %v", got)
	}

	// Three-table join.
	rows, err = db.Query(`SELECT n.id, c.name FROM nodes n
		JOIN node_children nc ON nc.node_id = n.id
		JOIN cells c ON c.id = nc.cell_id
		WHERE n.root = TRUE`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 2 {
		t.Errorf("3-way join = %+v", rows.Data)
	}
	if rows.Columns[0] != "n.id" || rows.Columns[1] != "c.name" {
		t.Errorf("columns = %v", rows.Columns)
	}

	// Join with index on the inner side.
	db.MustExec("CREATE INDEX by_node ON node_children (node_id)")
	rows, err = db.Query(`SELECT nc.cell_id FROM nodes n
		JOIN node_children nc ON nc.node_id = n.id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 3 {
		t.Errorf("indexed join = %+v", rows.Data)
	}

	// Ambiguous unqualified column.
	if _, err := db.Query("SELECT id FROM nodes n JOIN cells c ON n.id = c.id"); !errors.Is(err, ErrAmbiguousCol) {
		t.Errorf("ambiguity: %v", err)
	}
}

func TestTransactionsGroupCommit(t *testing.T) {
	db := testSQLDB(t, Options{})
	db.MustExec("CREATE TABLE t (id INT PRIMARY KEY)")
	db.MustExec("BEGIN")
	for i := 0; i < 10; i++ {
		db.MustExec("INSERT INTO t (id) VALUES (?)", i)
	}
	db.MustExec("COMMIT")
	rows, _ := db.Query("SELECT count(*) FROM t")
	if rows.Data[0][0].Int != 10 {
		t.Errorf("count = %v", rows.Data[0][0])
	}
	if _, err := db.Exec("COMMIT"); !errors.Is(err, ErrTxnState) {
		t.Errorf("commit outside txn: %v", err)
	}
	db.MustExec("BEGIN")
	if _, err := db.Exec("BEGIN"); !errors.Is(err, ErrTxnState) {
		t.Errorf("nested begin: %v", err)
	}
	db.MustExec("COMMIT")
	if _, err := db.Exec("ROLLBACK"); !errors.Is(err, ErrNotImplemented) {
		t.Errorf("rollback: %v", err)
	}
}

func TestPersistenceAndCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
	db.MustExec("INSERT INTO t (id, v) VALUES (1, 'checkpointed')")
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.MustExec("INSERT INTO t (id, v) VALUES (2, 'wal-only')")
	db.MustExec("UPDATE t SET v = 'patched' WHERE id = 1")
	if err := db.CloseAbrupt(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	rows, err := db2.Query("SELECT v FROM t WHERE id = 2")
	if err != nil || len(rows.Data) != 1 || rows.Data[0][0].Text != "wal-only" {
		t.Errorf("wal insert lost: %+v %v", rows, err)
	}
	rows, _ = db2.Query("SELECT v FROM t WHERE id = 1")
	if rows.Data[0][0].Text != "patched" {
		t.Errorf("wal update lost: %+v", rows.Data)
	}
}

func TestCleanReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
	db.MustExec("CREATE INDEX iv ON t (v)")
	for i := 0; i < 500; i++ {
		db.MustExec("INSERT INTO t (id, v) VALUES (?, ?)", i, fmt.Sprintf("g%d", i%7))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	rows, err := db2.Query("SELECT count(*) FROM t WHERE v = 'g3'")
	if err != nil || rows.Data[0][0].Int != 71 {
		t.Errorf("reopened indexed count = %+v, %v", rows, err)
	}
}

func TestDiskSizeAccounting(t *testing.T) {
	db := testSQLDB(t, Options{})
	db.MustExec("CREATE TABLE small (id INT PRIMARY KEY)")
	db.MustExec("CREATE TABLE big (id INT PRIMARY KEY, pad TEXT)")
	pad := make([]byte, 500)
	for i := range pad {
		pad[i] = 'x'
	}
	db.MustExec("BEGIN")
	for i := 0; i < 2000; i++ {
		db.MustExec("INSERT INTO big (id, pad) VALUES (?, ?)", i, string(pad))
	}
	db.MustExec("COMMIT")
	db.MustExec("INSERT INTO small (id) VALUES (1)")
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	sb, err := db.TableDiskSize("big")
	if err != nil {
		t.Fatal(err)
	}
	ss, err := db.TableDiskSize("small")
	if err != nil {
		t.Fatal(err)
	}
	if sb <= ss || sb < 2000*500 {
		t.Errorf("sizes: big=%d small=%d", sb, ss)
	}
	total, err := db.TotalDiskSize()
	if err != nil || total != sb+ss {
		t.Errorf("total=%d, want %d (%v)", total, sb+ss, err)
	}
}

func TestDropTable(t *testing.T) {
	db := testSQLDB(t, Options{})
	db.MustExec("CREATE TABLE t (id INT PRIMARY KEY)")
	db.MustExec("CREATE INDEX i ON t (id)")
	db.MustExec("DROP TABLE t")
	if _, err := db.Query("SELECT * FROM t"); !errors.Is(err, ErrNoSuchTable) {
		t.Errorf("dropped table query: %v", err)
	}
	if _, err := db.Exec("DROP TABLE t"); !errors.Is(err, ErrNoSuchTable) {
		t.Errorf("double drop: %v", err)
	}
	db.MustExec("DROP TABLE IF EXISTS t")
	// Recreate with the same name works.
	db.MustExec("CREATE TABLE t (id INT PRIMARY KEY)")
	db.MustExec("INSERT INTO t (id) VALUES (1)")
}

func TestSQLErrors(t *testing.T) {
	db := testSQLDB(t, Options{})
	db.MustExec("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
	for _, bad := range []string{
		"SELEKT * FROM t",
		"CREATE TABLE x (id INT)", // no pk
		"INSERT INTO t (id, v) VALUES (1)",
		"SELECT * FROM t WHERE id ~ 1",
	} {
		if _, err := db.Exec(bad); !errors.Is(err, ErrSQLSyntax) && !errors.Is(err, ErrNoPrimaryKey) {
			t.Errorf("%q: %v", bad, err)
		}
	}
	if _, err := db.Exec("INSERT INTO missing (id) VALUES (1)"); !errors.Is(err, ErrNoSuchTable) {
		t.Errorf("missing table: %v", err)
	}
	if _, err := db.Exec("INSERT INTO t (id, nope) VALUES (1, 2)"); !errors.Is(err, ErrNoSuchColumn) {
		t.Errorf("missing column: %v", err)
	}
	if _, err := db.Exec("INSERT INTO t (id, v) VALUES (1, 2)"); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("type mismatch: %v", err)
	}
	if _, err := db.Exec("INSERT INTO t (v) VALUES ('x')"); !errors.Is(err, ErrMissingKey) {
		t.Errorf("missing key: %v", err)
	}
	if _, err := db.Query("SELECT nope FROM t"); !errors.Is(err, ErrNoSuchColumn) {
		t.Errorf("bad projection: %v", err)
	}
}

func TestMultiRowInsertAtomicFormats(t *testing.T) {
	db := testSQLDB(t, Options{})
	db.MustExec("CREATE TABLE t (id INT PRIMARY KEY, a DOUBLE, b BOOLEAN)")
	// Int literal into DOUBLE column widens; quoted identifiers accepted.
	db.MustExec("INSERT INTO `t` (id, a, b) VALUES (1, 2, TRUE), (2, 2.5, FALSE)")
	rows, _ := db.Query("SELECT a FROM t WHERE id = 1")
	if rows.Data[0][0].Type != TFloat || rows.Data[0][0].Float != 2 {
		t.Errorf("widened = %v", rows.Data[0][0])
	}
	// Comments are skipped.
	db.MustExec("INSERT INTO t (id, a, b) VALUES (3, 1, TRUE) -- trailing comment")
	rows, _ = db.Query("SELECT count(*) FROM t")
	if rows.Data[0][0].Int != 3 {
		t.Errorf("count = %v", rows.Data[0][0])
	}
}

func TestSelectLimitAndAliases(t *testing.T) {
	db := testSQLDB(t, Options{})
	db.MustExec("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	for i := 0; i < 50; i++ {
		db.MustExec("INSERT INTO t (id, v) VALUES (?, ?)", i, i)
	}
	rows, err := db.Query("SELECT x.id FROM t x WHERE x.v >= 10 LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 5 || rows.Data[0][0].Int != 10 {
		t.Errorf("alias+limit = %+v", rows.Data)
	}
}
