package sqlengine

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/sqlengine/btree"
)

// Options tune the engine.
type Options struct {
	// CachePages is the soft buffer-pool cap per tree file. <= 0 → 512.
	CachePages int
	// SyncOnCommit fsyncs the redo log at COMMIT / autocommit boundaries.
	SyncOnCommit bool
	// CheckpointEvery bounds redo-log growth: when the log exceeds this
	// many bytes outside a transaction the engine checkpoints. <= 0 → 64 MiB.
	CheckpointEvery int64
}

func (o Options) withDefaults() Options {
	if o.CachePages <= 0 {
		o.CachePages = 512
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 64 << 20
	}
	return o
}

// DB is a relational database rooted at a directory: one B+tree file per
// table (clustered on the primary key) plus one per secondary index, a
// JSON catalog, and a redo log.
type DB struct {
	mu     sync.Mutex
	dir    string
	opts   Options
	tables map[string]*table // lower-cased name
	wal    *redoLog
	inTxn  bool
	closed bool
}

// table is the runtime state for one table.
type table struct {
	def     *TableDef
	pager   *btree.Pager
	tree    *btree.Tree
	indexes map[string]*indexTree // lower-cased column
}

type indexTree struct {
	column string
	pager  *btree.Pager
	tree   *btree.Tree
}

type sqlCatalog struct {
	Tables []sqlCatalogTable `json:"tables"`
}
type sqlCatalogTable struct {
	Name    string          `json:"name"`
	PK      string          `json:"pk"`
	Columns []sqlCatalogCol `json:"columns"`
	Indexes []string        `json:"indexes,omitempty"`
}
type sqlCatalogCol struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// Open opens or creates a database under dir and replays the redo log.
func Open(dir string, opts Options) (*DB, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	db := &DB{dir: dir, opts: opts, tables: make(map[string]*table)}
	if err := db.loadCatalog(); err != nil {
		return nil, err
	}
	// Replay: trees on disk are at the last checkpoint; the log holds
	// everything since.
	err := replayRedoLog(db.walPath(), func(op walOp) error {
		t, ok := db.tables[strings.ToLower(op.table)]
		if !ok {
			return nil // dropped table
		}
		switch op.op {
		case walOpUpsert:
			row, err := decodeSQLRow(t.def, op.data)
			if err != nil {
				return err
			}
			return db.applyUpsert(t, row, true)
		case walOpDelete:
			return db.applyDeleteKey(t, op.data)
		default:
			return ErrCorruptWAL
		}
	})
	if err != nil {
		return nil, err
	}
	wal, err := openRedoLog(db.walPath())
	if err != nil {
		return nil, err
	}
	db.wal = wal
	return db, nil
}

func (db *DB) walPath() string     { return filepath.Join(db.dir, "redo.log") }
func (db *DB) catalogPath() string { return filepath.Join(db.dir, "catalog.json") }

func (db *DB) tablePath(name string) string {
	return filepath.Join(db.dir, "tbl_"+strings.ToLower(name)+".dat")
}

func (db *DB) indexPath(tbl, col string) string {
	return filepath.Join(db.dir, "idx_"+strings.ToLower(tbl)+"_"+strings.ToLower(col)+".dat")
}

func (db *DB) loadCatalog() error {
	data, err := os.ReadFile(db.catalogPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var cat sqlCatalog
	if err := json.Unmarshal(data, &cat); err != nil {
		return fmt.Errorf("sqlengine: corrupt catalog: %w", err)
	}
	for _, ct := range cat.Tables {
		cols := make([]ColumnDef, len(ct.Columns))
		for i, c := range ct.Columns {
			typ, err := ParseDType(c.Type)
			if err != nil {
				return err
			}
			cols[i] = ColumnDef{Name: c.Name, Type: typ}
		}
		def, err := NewTableDef(ct.Name, cols, ct.PK)
		if err != nil {
			return err
		}
		def.Indexes = ct.Indexes
		if err := db.openTable(def); err != nil {
			return err
		}
	}
	return nil
}

func (db *DB) saveCatalog() error {
	var cat sqlCatalog
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t := db.tables[n]
		ct := sqlCatalogTable{Name: t.def.Name, PK: t.def.PK, Indexes: t.def.Indexes}
		for _, c := range t.def.Columns {
			ct.Columns = append(ct.Columns, sqlCatalogCol{Name: c.Name, Type: c.Type.String()})
		}
		cat.Tables = append(cat.Tables, ct)
	}
	data, err := json.MarshalIndent(&cat, "", "  ")
	if err != nil {
		return err
	}
	tmp := db.catalogPath() + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, db.catalogPath())
}

func (db *DB) openTable(def *TableDef) error {
	p, err := btree.OpenPager(db.tablePath(def.Name), db.opts.CachePages)
	if err != nil {
		return err
	}
	t := &table{def: def, pager: p, tree: btree.Open(p), indexes: make(map[string]*indexTree)}
	for _, col := range def.Indexes {
		ip, err := btree.OpenPager(db.indexPath(def.Name, col), db.opts.CachePages)
		if err != nil {
			return err
		}
		t.indexes[strings.ToLower(col)] = &indexTree{column: col, pager: ip, tree: btree.Open(ip)}
	}
	db.tables[strings.ToLower(def.Name)] = t
	return nil
}

// CreateTable registers a new table.
func (db *DB) CreateTable(def *TableDef, ifNotExists bool) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if _, ok := db.tables[strings.ToLower(def.Name)]; ok {
		if ifNotExists {
			return nil
		}
		return fmt.Errorf("%w: %s", ErrTableExists, def.Name)
	}
	if err := db.openTable(def); err != nil {
		return err
	}
	return db.saveCatalog()
}

// CreateIndex adds and back-fills a secondary index.
func (db *DB) CreateIndex(tblName, col string, ifNotExists bool) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	t, err := db.table(tblName)
	if err != nil {
		return err
	}
	if _, err := t.def.Column(col); err != nil {
		return err
	}
	if t.def.HasIndex(col) {
		if ifNotExists {
			return nil
		}
		return fmt.Errorf("%w: %s(%s)", ErrIndexExists, tblName, col)
	}
	ip, err := btree.OpenPager(db.indexPath(t.def.Name, col), db.opts.CachePages)
	if err != nil {
		return err
	}
	idx := &indexTree{column: col, pager: ip, tree: btree.Open(ip)}
	lcol := strings.ToLower(col)
	// Back-fill.
	err = t.tree.Scan(nil, nil, func(k, v []byte) bool {
		row, derr := decodeSQLRow(t.def, v)
		if derr != nil {
			err = derr
			return false
		}
		if val := row.Get(lcol); !val.IsNull() {
			if ierr := idx.tree.Insert(indexKeyBytes(val, k), nil); ierr != nil {
				err = ierr
				return false
			}
		}
		return true
	})
	if err != nil {
		ip.Close()
		return err
	}
	t.indexes[lcol] = idx
	t.def.Indexes = append(t.def.Indexes, col)
	return db.saveCatalog()
}

func (db *DB) table(name string) (*table, error) {
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchTable, name)
	}
	return t, nil
}

// indexKeyBytes is the composite (value, pk) index entry key; the value is
// length-prefixed so prefix scans never bleed across values.
func indexKeyBytes(val Datum, pk []byte) []byte {
	vb := val.KeyBytes()
	out := make([]byte, 0, len(vb)+len(pk)+4)
	out = appendUvarintLen(out, len(vb))
	out = append(out, vb...)
	return append(out, pk...)
}

func indexPrefixBytes(val Datum) []byte {
	vb := val.KeyBytes()
	out := appendUvarintLen(nil, len(vb))
	return append(out, vb...)
}

func appendUvarintLen(dst []byte, n int) []byte {
	for n >= 0x80 {
		dst = append(dst, byte(n)|0x80)
		n >>= 7
	}
	return append(dst, byte(n))
}

func indexEntryPK(key []byte) ([]byte, error) {
	var l int
	i := 0
	shift := 0
	for {
		if i >= len(key) {
			return nil, ErrCorruptRow
		}
		b := key[i]
		l |= int(b&0x7f) << shift
		i++
		if b < 0x80 {
			break
		}
		shift += 7
	}
	if len(key) < i+l {
		return nil, ErrCorruptRow
	}
	return key[i+l:], nil
}

// applyUpsert writes a row into the clustered tree and maintains indexes.
// replay mode tolerates pre-existing keys (idempotent redo).
func (db *DB) applyUpsert(t *table, row SQLRow, replay bool) error {
	pk := row.Get(t.def.PK)
	if pk.IsNull() {
		return fmt.Errorf("%w: %s", ErrMissingKey, t.def.PK)
	}
	key := pk.KeyBytes()
	var oldRow SQLRow
	oldVal, existed, err := t.tree.Get(key)
	if err != nil {
		return err
	}
	if existed {
		if !replay {
			return fmt.Errorf("%w: %s=%s", ErrDuplicateKey, t.def.PK, pk)
		}
		if len(t.indexes) > 0 {
			if oldRow, err = decodeSQLRow(t.def, oldVal); err != nil {
				return err
			}
		}
	}
	if err := t.tree.Insert(key, encodeSQLRow(t.def, row)); err != nil {
		return err
	}
	for lcol, idx := range t.indexes {
		newV := row.Get(lcol)
		var oldV Datum
		if oldRow != nil {
			oldV = oldRow.Get(lcol)
		}
		if oldRow != nil && !oldV.IsNull() && !oldV.Equal(newV) {
			if _, err := idx.tree.Delete(indexKeyBytes(oldV, key)); err != nil {
				return err
			}
		}
		if !newV.IsNull() && (oldRow == nil || !oldV.Equal(newV)) {
			if err := idx.tree.Insert(indexKeyBytes(newV, key), nil); err != nil {
				return err
			}
		}
	}
	return nil
}

// applyReplace is applyUpsert with replace semantics (UPDATE path).
func (db *DB) applyReplace(t *table, row SQLRow) error {
	return db.applyUpsert(t, row, true)
}

// applyDeleteKey removes a row by clustered key, maintaining indexes.
func (db *DB) applyDeleteKey(t *table, key []byte) error {
	oldVal, existed, err := t.tree.Get(key)
	if err != nil || !existed {
		return err
	}
	if len(t.indexes) > 0 {
		oldRow, err := decodeSQLRow(t.def, oldVal)
		if err != nil {
			return err
		}
		for lcol, idx := range t.indexes {
			if v := oldRow.Get(lcol); !v.IsNull() {
				if _, err := idx.tree.Delete(indexKeyBytes(v, key)); err != nil {
					return err
				}
			}
		}
	}
	_, err = t.tree.Delete(key)
	return err
}

// logAndMaybeCheckpoint appends ops to the redo log and autocheckpoints
// outside transactions when the log grows past the configured bound.
func (db *DB) logAndMaybeCheckpoint(ops []walOp) error {
	if err := db.wal.append(ops); err != nil {
		return err
	}
	if !db.inTxn {
		if db.opts.SyncOnCommit {
			if err := db.wal.sync(); err != nil {
				return err
			}
		}
		if db.wal.size() > db.opts.CheckpointEvery {
			return db.checkpointLocked()
		}
	}
	return nil
}

// Checkpoint flushes every pager and truncates the redo log.
func (db *DB) Checkpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	return db.checkpointLocked()
}

func (db *DB) checkpointLocked() error {
	for _, t := range db.tables {
		if err := t.pager.Flush(); err != nil {
			return err
		}
		for _, idx := range t.indexes {
			if err := idx.pager.Flush(); err != nil {
				return err
			}
		}
	}
	return db.wal.truncate()
}

// TableDiskSize returns the table's footprint: clustered tree file plus its
// index files (checkpoint first for exact on-disk figures).
func (db *DB) TableDiskSize(name string) (int64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.table(name)
	if err != nil {
		return 0, err
	}
	total := t.pager.FileSize()
	for _, idx := range t.indexes {
		total += idx.pager.FileSize()
	}
	return total, nil
}

// TotalDiskSize sums all tables.
func (db *DB) TotalDiskSize() (int64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	var total int64
	for _, t := range db.tables {
		total += t.pager.FileSize()
		for _, idx := range t.indexes {
			total += idx.pager.FileSize()
		}
	}
	return total, nil
}

// Tables lists table names.
func (db *DB) Tables() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	var names []string
	for _, t := range db.tables {
		names = append(names, t.def.Name)
	}
	sort.Strings(names)
	return names
}

// TableDef returns a table's definition.
func (db *DB) TableDef(name string) (*TableDef, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.table(name)
	if err != nil {
		return nil, err
	}
	return t.def, nil
}

// Close checkpoints and releases all files.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	if err := db.checkpointLocked(); err != nil {
		return err
	}
	db.closed = true
	var first error
	for _, t := range db.tables {
		if err := t.pager.Close(); err != nil && first == nil {
			first = err
		}
		for _, idx := range t.indexes {
			if err := idx.pager.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	if err := db.wal.close(); err != nil && first == nil {
		first = err
	}
	return first
}

// CloseAbrupt simulates a crash: the redo log reaches the OS, dirty pages
// are dropped, nothing is checkpointed.
func (db *DB) CloseAbrupt() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	var first error
	if err := db.wal.flush(); err != nil {
		first = err
	}
	for _, t := range db.tables {
		if err := t.pager.CloseAbrupt(); err != nil && first == nil {
			first = err
		}
		for _, idx := range t.indexes {
			if err := idx.pager.CloseAbrupt(); err != nil && first == nil {
				first = err
			}
		}
	}
	if err := db.wal.close(); err != nil && first == nil {
		first = err
	}
	return first
}
