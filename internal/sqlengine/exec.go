package sqlengine

import (
	"fmt"
	"os"
	"strings"
)

// Rows is a query result: projected column names and data rows in order.
type Rows struct {
	Columns []string
	Data    [][]Datum
}

// Exec runs a statement that returns no rows; it reports rows affected.
func (db *DB) Exec(sql string, args ...any) (int, error) {
	stmt, err := parseSQL(sql)
	if err != nil {
		return 0, err
	}
	b := &sqlBinder{args: args}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return 0, ErrClosed
	}
	n, _, err := db.execStmt(stmt, b)
	if err != nil {
		return 0, err
	}
	if b.pos != len(b.args) {
		return 0, fmt.Errorf("%w: %d placeholders, %d arguments", ErrSQLSyntax, b.pos, len(b.args))
	}
	return n, nil
}

// Query runs a SELECT.
func (db *DB) Query(sql string, args ...any) (*Rows, error) {
	stmt, err := parseSQL(sql)
	if err != nil {
		return nil, err
	}
	if _, ok := stmt.(sqlSelect); !ok {
		return nil, fmt.Errorf("%w: Query needs a SELECT statement", ErrNotImplemented)
	}
	b := &sqlBinder{args: args}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, ErrClosed
	}
	_, rows, err := db.execStmt(stmt, b)
	if err != nil {
		return nil, err
	}
	if b.pos != len(b.args) {
		return nil, fmt.Errorf("%w: %d placeholders, %d arguments", ErrSQLSyntax, b.pos, len(b.args))
	}
	return rows, nil
}

// MustExec panics on error (setup helpers in tests/examples).
func (db *DB) MustExec(sql string, args ...any) int {
	n, err := db.Exec(sql, args...)
	if err != nil {
		panic(fmt.Sprintf("sql %q: %v", sql, err))
	}
	return n
}

type sqlBinder struct {
	args []any
	pos  int
}

func (b *sqlBinder) resolve(e sqlExpr) (Datum, error) {
	if !e.Placeholder {
		return e.Datum, nil
	}
	if b.pos >= len(b.args) {
		return Datum{}, fmt.Errorf("%w: not enough arguments", ErrSQLSyntax)
	}
	a := b.args[b.pos]
	b.pos++
	switch v := a.(type) {
	case nil:
		return DNull(), nil
	case int:
		return DInt(int64(v)), nil
	case int32:
		return DInt(int64(v)), nil
	case int64:
		return DInt(v), nil
	case string:
		return DText(v), nil
	case bool:
		return DBool(v), nil
	case float64:
		return DFloat(v), nil
	case Datum:
		return v, nil
	default:
		return Datum{}, fmt.Errorf("%w: cannot bind %T", ErrSQLSyntax, a)
	}
}

func (db *DB) execStmt(stmt sqlStatement, b *sqlBinder) (int, *Rows, error) {
	switch st := stmt.(type) {
	case sqlCreateTable:
		def, err := NewTableDef(st.Name, st.Columns, st.PK)
		if err != nil {
			return 0, nil, err
		}
		if _, ok := db.tables[strings.ToLower(def.Name)]; ok {
			if st.IfNotExists {
				return 0, nil, nil
			}
			return 0, nil, fmt.Errorf("%w: %s", ErrTableExists, def.Name)
		}
		if err := db.openTable(def); err != nil {
			return 0, nil, err
		}
		return 0, nil, db.saveCatalog()

	case sqlCreateIndex:
		// CreateIndex takes the lock itself; call the unlocked core.
		db.mu.Unlock()
		err := db.CreateIndex(st.Table, st.Column, st.IfNotExists)
		db.mu.Lock()
		return 0, nil, err

	case sqlDropTable:
		t, ok := db.tables[strings.ToLower(st.Name)]
		if !ok {
			if st.IfExists {
				return 0, nil, nil
			}
			return 0, nil, fmt.Errorf("%w: %s", ErrNoSuchTable, st.Name)
		}
		t.pager.Close()
		os.Remove(db.tablePath(t.def.Name))
		for _, idx := range t.indexes {
			idx.pager.Close()
			os.Remove(db.indexPath(t.def.Name, idx.column))
		}
		delete(db.tables, strings.ToLower(st.Name))
		return 0, nil, db.saveCatalog()

	case sqlBegin:
		if db.inTxn {
			return 0, nil, fmt.Errorf("%w: already in a transaction", ErrTxnState)
		}
		db.inTxn = true
		return 0, nil, nil

	case sqlCommit:
		if !db.inTxn {
			return 0, nil, fmt.Errorf("%w: no transaction", ErrTxnState)
		}
		db.inTxn = false
		if db.opts.SyncOnCommit {
			if err := db.wal.sync(); err != nil {
				return 0, nil, err
			}
		}
		if db.wal.size() > db.opts.CheckpointEvery {
			return 0, nil, db.checkpointLocked()
		}
		return 0, nil, nil

	case sqlRollback:
		return 0, nil, fmt.Errorf("%w: ROLLBACK is not supported (redo-only log)", ErrNotImplemented)

	case sqlInsert:
		return db.execInsert(st, b)

	case sqlUpdate:
		return db.execUpdate(st, b)

	case sqlDelete:
		return db.execDelete(st, b)

	case sqlSelect:
		rows, err := db.execSelect(st, b)
		return 0, rows, err

	default:
		return 0, nil, fmt.Errorf("%w: %T", ErrNotImplemented, stmt)
	}
}

func (db *DB) execInsert(st sqlInsert, b *sqlBinder) (int, *Rows, error) {
	t, err := db.table(st.Table)
	if err != nil {
		return 0, nil, err
	}
	var ops []walOp
	var rows []SQLRow
	for _, exprRow := range st.Rows {
		row := make(SQLRow, len(st.Columns))
		for i, col := range st.Columns {
			v, err := b.resolve(exprRow[i])
			if err != nil {
				return 0, nil, err
			}
			cv, err := t.def.Coerce(col, v)
			if err != nil {
				return 0, nil, err
			}
			if !cv.IsNull() {
				row[strings.ToLower(col)] = cv
			}
		}
		pk := row.Get(t.def.PK)
		if pk.IsNull() {
			return 0, nil, fmt.Errorf("%w: %s", ErrMissingKey, t.def.PK)
		}
		// Unique constraint check — the read half of a MySQL insert.
		if _, exists, err := t.tree.Get(pk.KeyBytes()); err != nil {
			return 0, nil, err
		} else if exists {
			return 0, nil, fmt.Errorf("%w: %s=%s", ErrDuplicateKey, t.def.PK, pk)
		}
		ops = append(ops, walOp{op: walOpUpsert, table: t.def.Name, data: encodeSQLRow(t.def, row)})
		rows = append(rows, row)
	}
	if err := db.logAndMaybeCheckpoint(ops); err != nil {
		return 0, nil, err
	}
	for _, row := range rows {
		if err := db.applyUpsert(t, row, true); err != nil {
			return 0, nil, err
		}
	}
	return len(rows), nil, nil
}

func (db *DB) execUpdate(st sqlUpdate, b *sqlBinder) (int, *Rows, error) {
	t, err := db.table(st.Table)
	if err != nil {
		return 0, nil, err
	}
	set := make([]struct {
		col string
		val Datum
	}, len(st.Set))
	for i, a := range st.Set {
		v, err := b.resolve(a.Val)
		if err != nil {
			return 0, nil, err
		}
		cv, err := t.def.Coerce(a.Column, v)
		if err != nil {
			return 0, nil, err
		}
		set[i].col = strings.ToLower(a.Column)
		set[i].val = cv
	}
	matched, err := db.singleTableMatch(t, st.Where, b)
	if err != nil {
		return 0, nil, err
	}
	var ops []walOp
	var newRows []SQLRow
	var oldKeys [][]byte
	for _, row := range matched {
		oldPK := row.Get(t.def.PK)
		merged := make(SQLRow, len(row)+len(set))
		for k, v := range row {
			merged[k] = v
		}
		for _, a := range set {
			if a.val.IsNull() {
				delete(merged, a.col)
			} else {
				merged[a.col] = a.val
			}
		}
		newPK := merged.Get(t.def.PK)
		if newPK.IsNull() {
			return 0, nil, fmt.Errorf("%w: cannot NULL the primary key", ErrMissingKey)
		}
		if !newPK.Equal(oldPK) {
			ops = append(ops, walOp{op: walOpDelete, table: t.def.Name, data: oldPK.KeyBytes()})
			oldKeys = append(oldKeys, oldPK.KeyBytes())
		}
		ops = append(ops, walOp{op: walOpUpsert, table: t.def.Name, data: encodeSQLRow(t.def, merged)})
		newRows = append(newRows, merged)
	}
	if err := db.logAndMaybeCheckpoint(ops); err != nil {
		return 0, nil, err
	}
	for _, k := range oldKeys {
		if err := db.applyDeleteKey(t, k); err != nil {
			return 0, nil, err
		}
	}
	for _, row := range newRows {
		if err := db.applyReplace(t, row); err != nil {
			return 0, nil, err
		}
	}
	return len(newRows), nil, nil
}

func (db *DB) execDelete(st sqlDelete, b *sqlBinder) (int, *Rows, error) {
	t, err := db.table(st.Table)
	if err != nil {
		return 0, nil, err
	}
	matched, err := db.singleTableMatch(t, st.Where, b)
	if err != nil {
		return 0, nil, err
	}
	var ops []walOp
	var keys [][]byte
	for _, row := range matched {
		k := row.Get(t.def.PK).KeyBytes()
		ops = append(ops, walOp{op: walOpDelete, table: t.def.Name, data: k})
		keys = append(keys, k)
	}
	if len(ops) == 0 {
		return 0, nil, nil
	}
	if err := db.logAndMaybeCheckpoint(ops); err != nil {
		return 0, nil, err
	}
	for _, k := range keys {
		if err := db.applyDeleteKey(t, k); err != nil {
			return 0, nil, err
		}
	}
	return len(keys), nil, nil
}

// boundPred is a WHERE conjunct with its value resolved.
type boundPred struct {
	qual string
	col  string
	op   string
	val  Datum
}

func datumPredHolds(v Datum, op string, want Datum) bool {
	if v.IsNull() {
		return op == "!=" && !want.IsNull()
	}
	c := v.Compare(want)
	switch op {
	case "=":
		return c == 0
	case "!=":
		return c != 0
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	case ">=":
		return c >= 0
	}
	return false
}

// singleTableMatch plans and runs a single-table predicate match, used by
// UPDATE/DELETE and as the SELECT base-table access path: point read on a
// primary-key equality, index lookup on an indexed equality, else a scan.
func (db *DB) singleTableMatch(t *table, where []sqlPredicate, b *sqlBinder) ([]SQLRow, error) {
	preds := make([]boundPred, len(where))
	for i, p := range where {
		if p.Col.Qualifier != "" && !strings.EqualFold(p.Col.Qualifier, t.def.Name) {
			return nil, fmt.Errorf("%w: %s.%s", ErrNoSuchColumn, p.Col.Qualifier, p.Col.Column)
		}
		if _, err := t.def.Column(p.Col.Column); err != nil {
			return nil, err
		}
		v, err := b.resolve(p.Val)
		if err != nil {
			return nil, err
		}
		preds[i] = boundPred{col: strings.ToLower(p.Col.Column), op: p.Op, val: v}
	}
	candidates, planned, err := db.accessPath(t, preds)
	if err != nil {
		return nil, err
	}
	out := candidates[:0]
	for _, row := range candidates {
		ok := true
		for i, p := range preds {
			if i == planned {
				continue
			}
			if !datumPredHolds(row.Get(p.col), p.op, p.val) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, row)
		}
	}
	return out, nil
}

// accessPath picks the cheapest access for the predicate set and returns
// candidate rows plus the index of the predicate it consumed (-1 = scan).
func (db *DB) accessPath(t *table, preds []boundPred) ([]SQLRow, int, error) {
	for i, p := range preds {
		if p.op == "=" && strings.EqualFold(p.col, t.def.PK) {
			cv, err := t.def.Coerce(p.col, p.val)
			if err != nil {
				return nil, 0, err
			}
			v, ok, err := t.tree.Get(cv.KeyBytes())
			if err != nil {
				return nil, 0, err
			}
			if !ok {
				return nil, i, nil
			}
			row, err := decodeSQLRow(t.def, v)
			if err != nil {
				return nil, 0, err
			}
			return []SQLRow{row}, i, nil
		}
	}
	for i, p := range preds {
		if p.op != "=" {
			continue
		}
		idx, ok := t.indexes[p.col]
		if !ok {
			continue
		}
		cv, err := t.def.Coerce(p.col, p.val)
		if err != nil {
			return nil, 0, err
		}
		var rows []SQLRow
		var scanErr error
		err = idx.tree.ScanPrefix(indexPrefixBytes(cv), func(k, _ []byte) bool {
			pk, perr := indexEntryPK(k)
			if perr != nil {
				scanErr = perr
				return false
			}
			v, ok, gerr := t.tree.Get(pk)
			if gerr != nil {
				scanErr = gerr
				return false
			}
			if !ok {
				return true
			}
			row, derr := decodeSQLRow(t.def, v)
			if derr != nil {
				scanErr = derr
				return false
			}
			rows = append(rows, row)
			return true
		})
		if scanErr != nil {
			return nil, 0, scanErr
		}
		if err != nil {
			return nil, 0, err
		}
		return rows, i, nil
	}
	// Full scan.
	var rows []SQLRow
	var derr error
	err := t.tree.Scan(nil, nil, func(_, v []byte) bool {
		row, err := decodeSQLRow(t.def, v)
		if err != nil {
			derr = err
			return false
		}
		rows = append(rows, row)
		return true
	})
	if derr != nil {
		return nil, 0, derr
	}
	return rows, -1, err
}
