// Package sqlengine implements the MySQL-role relational engine of the
// paper's evaluation: page-based clustered B+trees per table, secondary
// index trees, a redo log with checkpoint recovery, and a SQL subset with
// multi-row INSERT (the paper's bulk load), equi-joins (needed to rebuild a
// DWARF from the MySQL-DWARF schema of Fig. 4), and simple planning (primary
// key point reads, secondary index lookups, else scans).
package sqlengine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// DType enumerates column types (MySQL spelling: INT, TEXT, BOOLEAN,
// DOUBLE). There is deliberately no set type — the lack of one is why the
// paper's MySQL-DWARF schema needs NODE_CHILDREN / CELL_CHILDREN join
// tables.
type DType uint8

// Supported column types.
const (
	TNull DType = iota
	TInt
	TText
	TBool
	TFloat
)

// String names the type in SQL spelling.
func (t DType) String() string {
	switch t {
	case TNull:
		return "NULL"
	case TInt:
		return "INT"
	case TText:
		return "TEXT"
	case TBool:
		return "BOOLEAN"
	case TFloat:
		return "DOUBLE"
	default:
		return fmt.Sprintf("DTYPE(%d)", uint8(t))
	}
}

// ParseDType maps a SQL type name to a DType.
func ParseDType(s string) (DType, error) {
	switch strings.ToUpper(s) {
	case "INT", "INTEGER", "BIGINT", "SMALLINT":
		return TInt, nil
	case "TEXT", "VARCHAR", "CHAR":
		return TText, nil
	case "BOOLEAN", "BOOL":
		return TBool, nil
	case "DOUBLE", "FLOAT", "REAL":
		return TFloat, nil
	default:
		return TNull, fmt.Errorf("sqlengine: unknown type %q", s)
	}
}

// Datum is one SQL value; the zero Datum is NULL.
type Datum struct {
	Type  DType
	Int   int64
	Text  string
	Bool  bool
	Float float64
}

// Constructors.
func DNull() Datum           { return Datum{} }
func DInt(v int64) Datum     { return Datum{Type: TInt, Int: v} }
func DText(v string) Datum   { return Datum{Type: TText, Text: v} }
func DBool(v bool) Datum     { return Datum{Type: TBool, Bool: v} }
func DFloat(v float64) Datum { return Datum{Type: TFloat, Float: v} }

// IsNull reports whether the datum is NULL.
func (d Datum) IsNull() bool { return d.Type == TNull }

// String renders as a SQL literal.
func (d Datum) String() string {
	switch d.Type {
	case TNull:
		return "NULL"
	case TInt:
		return strconv.FormatInt(d.Int, 10)
	case TText:
		return "'" + strings.ReplaceAll(d.Text, "'", "''") + "'"
	case TBool:
		if d.Bool {
			return "TRUE"
		}
		return "FALSE"
	case TFloat:
		return strconv.FormatFloat(d.Float, 'g', -1, 64)
	default:
		return "?"
	}
}

// Equal is deep equality (NULL equals NULL for storage purposes; SQL
// comparison semantics live in the executor).
func (d Datum) Equal(o Datum) bool {
	if d.Type != o.Type {
		return false
	}
	switch d.Type {
	case TNull:
		return true
	case TInt:
		return d.Int == o.Int
	case TText:
		return d.Text == o.Text
	case TBool:
		return d.Bool == o.Bool
	case TFloat:
		return d.Float == o.Float
	}
	return false
}

// Compare orders two datums; mixed int/float compare numerically, other
// mixed types by type tag.
func (d Datum) Compare(o Datum) int {
	if d.Type == TInt && o.Type == TFloat {
		return cmpFloat(float64(d.Int), o.Float)
	}
	if d.Type == TFloat && o.Type == TInt {
		return cmpFloat(d.Float, float64(o.Int))
	}
	if d.Type != o.Type {
		if d.Type < o.Type {
			return -1
		}
		return 1
	}
	switch d.Type {
	case TNull:
		return 0
	case TInt:
		switch {
		case d.Int < o.Int:
			return -1
		case d.Int > o.Int:
			return 1
		}
		return 0
	case TText:
		return strings.Compare(d.Text, o.Text)
	case TBool:
		switch {
		case d.Bool == o.Bool:
			return 0
		case !d.Bool:
			return -1
		}
		return 1
	case TFloat:
		return cmpFloat(d.Float, o.Float)
	}
	return 0
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// KeyBytes encodes the datum so byte order matches Compare order within a
// type (used for clustered and index keys).
func (d Datum) KeyBytes() []byte {
	out := []byte{byte(d.Type)}
	switch d.Type {
	case TInt:
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], uint64(d.Int)^(1<<63))
		out = append(out, buf[:]...)
	case TText:
		out = append(out, d.Text...)
	case TBool:
		if d.Bool {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
	case TFloat:
		bits := math.Float64bits(d.Float)
		if d.Float >= 0 || bits == 0 {
			bits ^= 1 << 63
		} else {
			bits = ^bits
		}
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], bits)
		out = append(out, buf[:]...)
	}
	return out
}

// ErrCorruptRow reports malformed stored rows.
var ErrCorruptRow = errors.New("sqlengine: corrupt row encoding")

// appendDatum serializes for row storage.
func appendDatum(dst []byte, d Datum) []byte {
	dst = append(dst, byte(d.Type))
	switch d.Type {
	case TInt:
		dst = binary.AppendVarint(dst, d.Int)
	case TText:
		dst = binary.AppendUvarint(dst, uint64(len(d.Text)))
		dst = append(dst, d.Text...)
	case TBool:
		if d.Bool {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case TFloat:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(d.Float))
		dst = append(dst, buf[:]...)
	}
	return dst
}

func decodeDatum(src []byte) (Datum, []byte, error) {
	if len(src) == 0 {
		return Datum{}, nil, ErrCorruptRow
	}
	t := DType(src[0])
	src = src[1:]
	switch t {
	case TNull:
		return Datum{}, src, nil
	case TInt:
		v, n := binary.Varint(src)
		if n <= 0 {
			return Datum{}, nil, ErrCorruptRow
		}
		return DInt(v), src[n:], nil
	case TText:
		l, n := binary.Uvarint(src)
		if n <= 0 || uint64(len(src)-n) < l {
			return Datum{}, nil, ErrCorruptRow
		}
		return DText(string(src[n : n+int(l)])), src[n+int(l):], nil
	case TBool:
		if len(src) < 1 {
			return Datum{}, nil, ErrCorruptRow
		}
		return DBool(src[0] == 1), src[1:], nil
	case TFloat:
		if len(src) < 8 {
			return Datum{}, nil, ErrCorruptRow
		}
		return DFloat(math.Float64frombits(binary.LittleEndian.Uint64(src))), src[8:], nil
	default:
		return Datum{}, nil, fmt.Errorf("%w: type %d", ErrCorruptRow, t)
	}
}

// SQLRow is a decoded row keyed by lower-cased column name.
type SQLRow map[string]Datum

// Get returns a column value (NULL when absent).
func (r SQLRow) Get(col string) Datum {
	if v, ok := r[strings.ToLower(col)]; ok {
		return v
	}
	return DNull()
}
