package sqlengine

import (
	"errors"
	"fmt"
	"regexp"
	"strings"
)

// Engine errors.
var (
	ErrTableExists    = errors.New("sqlengine: table already exists")
	ErrNoSuchTable    = errors.New("sqlengine: no such table")
	ErrNoSuchColumn   = errors.New("sqlengine: no such column")
	ErrNoPrimaryKey   = errors.New("sqlengine: table needs a single-column primary key")
	ErrTypeMismatch   = errors.New("sqlengine: value type does not match column")
	ErrDuplicateKey   = errors.New("sqlengine: duplicate primary key")
	ErrMissingKey     = errors.New("sqlengine: INSERT must provide the primary key")
	ErrIndexExists    = errors.New("sqlengine: index already exists")
	ErrClosed         = errors.New("sqlengine: database is closed")
	ErrBadIdent       = errors.New("sqlengine: invalid identifier")
	ErrAmbiguousCol   = errors.New("sqlengine: ambiguous column reference")
	ErrNotImplemented = errors.New("sqlengine: unsupported SQL shape")
	ErrTxnState       = errors.New("sqlengine: invalid transaction state")
)

var sqlIdentRe = regexp.MustCompile(`^[A-Za-z_][A-Za-z0-9_]*$`)

func checkSQLIdent(s string) error {
	if !sqlIdentRe.MatchString(s) {
		return fmt.Errorf("%w: %q", ErrBadIdent, s)
	}
	return nil
}

// ColumnDef is one column of a table definition.
type ColumnDef struct {
	Name string
	Type DType
}

// TableDef is the catalog entry for a table: columns, the single-column
// primary key, and the secondary indexes (by column name).
type TableDef struct {
	Name    string
	Columns []ColumnDef
	PK      string
	Indexes []string
}

// NewTableDef validates a definition.
func NewTableDef(name string, cols []ColumnDef, pk string) (*TableDef, error) {
	if err := checkSQLIdent(name); err != nil {
		return nil, err
	}
	if len(cols) == 0 || pk == "" {
		return nil, ErrNoPrimaryKey
	}
	seen := map[string]bool{}
	pkFound := false
	for _, c := range cols {
		if err := checkSQLIdent(c.Name); err != nil {
			return nil, err
		}
		lc := strings.ToLower(c.Name)
		if seen[lc] {
			return nil, fmt.Errorf("sqlengine: duplicate column %q", c.Name)
		}
		seen[lc] = true
		if strings.EqualFold(c.Name, pk) {
			pkFound = true
		}
	}
	if !pkFound {
		return nil, fmt.Errorf("%w: %q not among columns", ErrNoPrimaryKey, pk)
	}
	return &TableDef{Name: name, Columns: cols, PK: pk}, nil
}

// ColumnIndex finds a column position (case-insensitive), or -1.
func (d *TableDef) ColumnIndex(name string) int {
	for i, c := range d.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Column returns column metadata by name.
func (d *TableDef) Column(name string) (ColumnDef, error) {
	if i := d.ColumnIndex(name); i >= 0 {
		return d.Columns[i], nil
	}
	return ColumnDef{}, fmt.Errorf("%w: %s.%s", ErrNoSuchColumn, d.Name, name)
}

// HasIndex reports a secondary index on the column.
func (d *TableDef) HasIndex(col string) bool {
	for _, c := range d.Indexes {
		if strings.EqualFold(c, col) {
			return true
		}
	}
	return false
}

// Coerce checks/coerces a datum for a column (ints widen to DOUBLE).
func (d *TableDef) Coerce(col string, v Datum) (Datum, error) {
	c, err := d.Column(col)
	if err != nil {
		return Datum{}, err
	}
	if v.IsNull() {
		return v, nil
	}
	if c.Type == TFloat && v.Type == TInt {
		return DFloat(float64(v.Int)), nil
	}
	if v.Type != c.Type {
		return Datum{}, fmt.Errorf("%w: %s.%s is %s, got %s",
			ErrTypeMismatch, d.Name, col, c.Type, v.Type)
	}
	return v, nil
}

// encodeSQLRow serializes per column order: presence bitmap + values.
func encodeSQLRow(def *TableDef, row SQLRow) []byte {
	nbits := (len(def.Columns) + 7) / 8
	out := make([]byte, nbits, nbits+16*len(def.Columns))
	for i, c := range def.Columns {
		v := row.Get(c.Name)
		if v.IsNull() {
			continue
		}
		out[i/8] |= 1 << (i % 8)
		out = appendDatum(out, v)
	}
	return out
}

func decodeSQLRow(def *TableDef, data []byte) (SQLRow, error) {
	nbits := (len(def.Columns) + 7) / 8
	if len(data) < nbits {
		return nil, ErrCorruptRow
	}
	bitmap := data[:nbits]
	rest := data[nbits:]
	row := make(SQLRow, len(def.Columns))
	for i, c := range def.Columns {
		if bitmap[i/8]&(1<<(i%8)) == 0 {
			continue
		}
		var v Datum
		var err error
		v, rest, err = decodeDatum(rest)
		if err != nil {
			return nil, fmt.Errorf("column %s: %w", c.Name, err)
		}
		row[strings.ToLower(c.Name)] = v
	}
	return row, nil
}
