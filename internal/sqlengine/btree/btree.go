package btree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// Node page layout:
//
//	byte 0      : node type (1 = leaf, 2 = internal)
//	bytes 1..2  : numKeys u16
//	bytes 3..6  : next leaf page id u32 (leaves only; 0 = none)
//	leaf payload    : (klen u16, vlen u16, key, val) * numKeys
//	internal payload: (numKeys+1) child ids u32, then (klen u16, key) * numKeys
//
// Internal node semantics: child[i] covers keys < keys[i]; child[numKeys]
// covers keys >= keys[numKeys-1]. Keys[i] is the smallest key reachable
// under child[i+1].
const (
	nodeLeaf     = 1
	nodeInternal = 2
	nodeHdrSize  = 7
)

// MaxEntrySize bounds one key+value pair so that a page always fits at
// least four entries.
const MaxEntrySize = (PageSize - nodeHdrSize) / 4

// Tree errors.
var (
	ErrEntryTooLarge = errors.New("btree: entry exceeds maximum size")
	ErrCorruptNode   = errors.New("btree: corrupt node page")
)

// Tree is a B+tree rooted in a Pager's meta page. Decoded nodes are cached
// write-through (the role a real engine's in-place slotted pages play):
// mutations edit the decoded form and pages are serialized lazily at Sync
// time or on cache eviction. Callers that flush the pager must call Sync
// first; the engine's checkpoint does.
type Tree struct {
	p     *Pager
	nodes map[uint32]*node
	dirty map[uint32]bool
	cap   int
}

// Open returns the tree stored in the pager's file and registers its Sync
// as the pager's pre-flush hook, so Pager.Flush/Close always persist the
// decoded state first.
func Open(p *Pager) *Tree {
	t := &Tree{
		p:     p,
		nodes: make(map[uint32]*node),
		dirty: make(map[uint32]bool),
		cap:   1024,
	}
	p.OnFlush(t.Sync)
	return t
}

// Sync serializes every dirty decoded node into its page. Must run before
// Pager.Flush.
func (t *Tree) Sync() error {
	for id := range t.dirty {
		if err := t.encodeToPage(id, t.nodes[id]); err != nil {
			return err
		}
	}
	t.dirty = make(map[uint32]bool)
	return nil
}

// DropCache discards decoded state (crash simulation support).
func (t *Tree) DropCache() {
	t.nodes = make(map[uint32]*node)
	t.dirty = make(map[uint32]bool)
}

func (t *Tree) encodeToPage(id uint32, n *node) error {
	data, err := t.p.Get(id)
	if err != nil {
		return err
	}
	n.encode(data)
	t.p.MarkDirty(id)
	return nil
}

// evictIfNeeded keeps the decoded cache bounded, serializing dirty nodes as
// they leave.
func (t *Tree) evictIfNeeded() error {
	if len(t.nodes) <= t.cap {
		return nil
	}
	for id := range t.nodes {
		if len(t.nodes) <= t.cap {
			return nil
		}
		if t.dirty[id] {
			if err := t.encodeToPage(id, t.nodes[id]); err != nil {
				return err
			}
			delete(t.dirty, id)
		}
		delete(t.nodes, id)
	}
	return nil
}

// node is the decoded form of a page.
type node struct {
	leaf     bool
	keys     [][]byte
	vals     [][]byte // leaf
	children []uint32 // internal, len(keys)+1
	next     uint32   // leaf sibling
}

func decodeNode(data []byte) (*node, error) {
	if len(data) < nodeHdrSize {
		return nil, ErrCorruptNode
	}
	typ := data[0]
	numKeys := int(binary.LittleEndian.Uint16(data[1:]))
	n := &node{next: binary.LittleEndian.Uint32(data[3:])}
	rest := data[nodeHdrSize:]
	switch typ {
	case nodeLeaf:
		n.leaf = true
		n.keys = make([][]byte, numKeys)
		n.vals = make([][]byte, numKeys)
		for i := 0; i < numKeys; i++ {
			if len(rest) < 4 {
				return nil, ErrCorruptNode
			}
			klen := int(binary.LittleEndian.Uint16(rest))
			vlen := int(binary.LittleEndian.Uint16(rest[2:]))
			rest = rest[4:]
			if len(rest) < klen+vlen {
				return nil, ErrCorruptNode
			}
			n.keys[i] = append([]byte(nil), rest[:klen]...)
			n.vals[i] = append([]byte(nil), rest[klen:klen+vlen]...)
			rest = rest[klen+vlen:]
		}
	case nodeInternal:
		if numKeys == 0 {
			return nil, ErrCorruptNode
		}
		n.children = make([]uint32, numKeys+1)
		if len(rest) < 4*(numKeys+1) {
			return nil, ErrCorruptNode
		}
		for i := range n.children {
			n.children[i] = binary.LittleEndian.Uint32(rest)
			rest = rest[4:]
		}
		n.keys = make([][]byte, numKeys)
		for i := 0; i < numKeys; i++ {
			if len(rest) < 2 {
				return nil, ErrCorruptNode
			}
			klen := int(binary.LittleEndian.Uint16(rest))
			rest = rest[2:]
			if len(rest) < klen {
				return nil, ErrCorruptNode
			}
			n.keys[i] = append([]byte(nil), rest[:klen]...)
			rest = rest[klen:]
		}
	default:
		return nil, fmt.Errorf("%w: type %d", ErrCorruptNode, typ)
	}
	return n, nil
}

func (n *node) encodedSize() int {
	size := nodeHdrSize
	if n.leaf {
		for i := range n.keys {
			size += 4 + len(n.keys[i]) + len(n.vals[i])
		}
	} else {
		size += 4 * (len(n.keys) + 1)
		for i := range n.keys {
			size += 2 + len(n.keys[i])
		}
	}
	return size
}

func (n *node) encode(dst []byte) {
	for i := range dst {
		dst[i] = 0
	}
	if n.leaf {
		dst[0] = nodeLeaf
	} else {
		dst[0] = nodeInternal
	}
	binary.LittleEndian.PutUint16(dst[1:], uint16(len(n.keys)))
	binary.LittleEndian.PutUint32(dst[3:], n.next)
	out := dst[nodeHdrSize:]
	if n.leaf {
		for i := range n.keys {
			binary.LittleEndian.PutUint16(out, uint16(len(n.keys[i])))
			binary.LittleEndian.PutUint16(out[2:], uint16(len(n.vals[i])))
			out = out[4:]
			copy(out, n.keys[i])
			out = out[len(n.keys[i]):]
			copy(out, n.vals[i])
			out = out[len(n.vals[i]):]
		}
	} else {
		for _, c := range n.children {
			binary.LittleEndian.PutUint32(out, c)
			out = out[4:]
		}
		for i := range n.keys {
			binary.LittleEndian.PutUint16(out, uint16(len(n.keys[i])))
			out = out[2:]
			copy(out, n.keys[i])
			out = out[len(n.keys[i]):]
		}
	}
}

func (t *Tree) readNode(id uint32) (*node, error) {
	if n, ok := t.nodes[id]; ok {
		return n, nil
	}
	data, err := t.p.Get(id)
	if err != nil {
		return nil, err
	}
	n, err := decodeNode(data)
	if err != nil {
		return nil, err
	}
	t.nodes[id] = n
	if err := t.evictIfNeeded(); err != nil {
		return nil, err
	}
	return n, nil
}

func (t *Tree) writeNode(id uint32, n *node) error {
	t.nodes[id] = n
	t.dirty[id] = true
	// The page must exist and be marked dirty so the pager keeps it
	// resident until the next checkpoint.
	if _, err := t.p.Get(id); err != nil {
		return err
	}
	t.p.MarkDirty(id)
	return t.evictIfNeeded()
}

// Get returns the value stored under key.
func (t *Tree) Get(key []byte) ([]byte, bool, error) {
	root, err := t.p.Root()
	if err != nil || root == 0 {
		return nil, false, err
	}
	id := root
	for {
		n, err := t.readNode(id)
		if err != nil {
			return nil, false, err
		}
		if n.leaf {
			i := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], key) >= 0 })
			if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
				return n.vals[i], true, nil
			}
			return nil, false, nil
		}
		id = n.children[childIndex(n, key)]
	}
}

// childIndex picks the child covering key.
func childIndex(n *node, key []byte) int {
	return sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], key) > 0 })
}

// splitResult carries a promoted separator after a child split.
type splitResult struct {
	split   bool
	sepKey  []byte
	rightID uint32
}

// Insert puts (key, value), replacing any existing value.
func (t *Tree) Insert(key, value []byte) error {
	if len(key)+len(value)+8 > MaxEntrySize {
		return fmt.Errorf("%w: %d bytes", ErrEntryTooLarge, len(key)+len(value))
	}
	root, err := t.p.Root()
	if err != nil {
		return err
	}
	if root == 0 {
		id, err := t.p.Allocate()
		if err != nil {
			return err
		}
		leaf := &node{leaf: true, keys: [][]byte{append([]byte(nil), key...)},
			vals: [][]byte{append([]byte(nil), value...)}}
		if err := t.writeNode(id, leaf); err != nil {
			return err
		}
		return t.p.SetRoot(id)
	}
	res, _, err := t.insertInto(root, key, value)
	if err != nil {
		return err
	}
	if res.split {
		newRootID, err := t.p.Allocate()
		if err != nil {
			return err
		}
		newRoot := &node{
			keys:     [][]byte{res.sepKey},
			children: []uint32{root, res.rightID},
		}
		if err := t.writeNode(newRootID, newRoot); err != nil {
			return err
		}
		return t.p.SetRoot(newRootID)
	}
	return nil
}

func (t *Tree) insertInto(id uint32, key, value []byte) (splitResult, bool, error) {
	n, err := t.readNode(id)
	if err != nil {
		return splitResult{}, false, err
	}
	if n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], key) >= 0 })
		if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
			n.vals[i] = append([]byte(nil), value...)
		} else {
			n.keys = append(n.keys, nil)
			copy(n.keys[i+1:], n.keys[i:])
			n.keys[i] = append([]byte(nil), key...)
			n.vals = append(n.vals, nil)
			copy(n.vals[i+1:], n.vals[i:])
			n.vals[i] = append([]byte(nil), value...)
		}
		atEnd := i == len(n.keys)-1
		res, err := t.writeMaybeSplit(id, n, atEnd)
		return res, atEnd, err
	}
	ci := childIndex(n, key)
	res, childAtEnd, err := t.insertInto(n.children[ci], key, value)
	if err != nil {
		return splitResult{}, false, err
	}
	atEnd := childAtEnd && ci == len(n.children)-1
	if !res.split {
		return splitResult{}, atEnd, nil
	}
	// Insert separator + right child after position ci.
	n.keys = append(n.keys, nil)
	copy(n.keys[ci+1:], n.keys[ci:])
	n.keys[ci] = res.sepKey
	n.children = append(n.children, 0)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = res.rightID
	out, err := t.writeMaybeSplit(id, n, atEnd)
	return out, atEnd, err
}

// writeMaybeSplit persists n into page id, splitting first if it no longer
// fits the page. When the overflow was caused by an append at the tree's
// right edge (atEnd), the split leaves the left node full and moves only
// the tail — the rightmost-split optimization that gives sequential bulk
// loads near-100% page fill, as production engines do.
func (t *Tree) writeMaybeSplit(id uint32, n *node, atEnd bool) (splitResult, error) {
	if n.encodedSize() <= PageSize {
		return splitResult{}, t.writeNode(id, n)
	}
	rightID, err := t.p.Allocate()
	if err != nil {
		return splitResult{}, err
	}
	var sep []byte
	var right *node
	if n.leaf {
		mid := splitPoint(n)
		if atEnd {
			mid = len(n.keys) - 1
		}
		right = &node{leaf: true,
			keys: append([][]byte(nil), n.keys[mid:]...),
			vals: append([][]byte(nil), n.vals[mid:]...),
			next: n.next,
		}
		n.keys = n.keys[:mid]
		n.vals = n.vals[:mid]
		n.next = rightID
		sep = append([]byte(nil), right.keys[0]...)
	} else {
		mid := splitPoint(n)
		if atEnd && len(n.keys) >= 3 {
			mid = len(n.keys) - 2
		}
		// The separator at mid moves up; it is not duplicated below.
		sep = append([]byte(nil), n.keys[mid]...)
		right = &node{
			keys:     append([][]byte(nil), n.keys[mid+1:]...),
			children: append([]uint32(nil), n.children[mid+1:]...),
		}
		n.keys = n.keys[:mid]
		n.children = n.children[:mid+1]
	}
	if err := t.writeNode(id, n); err != nil {
		return splitResult{}, err
	}
	if err := t.writeNode(rightID, right); err != nil {
		return splitResult{}, err
	}
	return splitResult{split: true, sepKey: sep, rightID: rightID}, nil
}

// splitPoint picks the key index where the left side reaches half the
// payload, keeping both sides non-empty.
func splitPoint(n *node) int {
	total := n.encodedSize()
	half := total / 2
	acc := nodeHdrSize
	for i := range n.keys {
		if n.leaf {
			acc += 4 + len(n.keys[i]) + len(n.vals[i])
		} else {
			acc += 6 + len(n.keys[i])
		}
		if acc >= half {
			mid := i + 1
			if mid >= len(n.keys) {
				mid = len(n.keys) - 1
			}
			if mid < 1 {
				mid = 1
			}
			return mid
		}
	}
	return len(n.keys) / 2
}

// Delete removes key, reporting whether it was present. Leaves are not
// rebalanced (lazy deletion); space is reclaimed on the next compaction of
// the owning table, mirroring how simple engines defer merge work.
func (t *Tree) Delete(key []byte) (bool, error) {
	root, err := t.p.Root()
	if err != nil || root == 0 {
		return false, err
	}
	id := root
	for {
		n, err := t.readNode(id)
		if err != nil {
			return false, err
		}
		if !n.leaf {
			id = n.children[childIndex(n, key)]
			continue
		}
		i := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], key) >= 0 })
		if i >= len(n.keys) || !bytes.Equal(n.keys[i], key) {
			return false, nil
		}
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		return true, t.writeNode(id, n)
	}
}

// Scan iterates entries with lo <= key < hi in order (nil lo = from start,
// nil hi = to end). Return false from fn to stop.
func (t *Tree) Scan(lo, hi []byte, fn func(key, value []byte) bool) error {
	root, err := t.p.Root()
	if err != nil || root == 0 {
		return err
	}
	// Descend to the leaf that would contain lo.
	id := root
	for {
		n, err := t.readNode(id)
		if err != nil {
			return err
		}
		if n.leaf {
			break
		}
		if lo == nil {
			id = n.children[0]
		} else {
			id = n.children[childIndex(n, lo)]
		}
	}
	for id != 0 {
		n, err := t.readNode(id)
		if err != nil {
			return err
		}
		for i := range n.keys {
			if lo != nil && bytes.Compare(n.keys[i], lo) < 0 {
				continue
			}
			if hi != nil && bytes.Compare(n.keys[i], hi) >= 0 {
				return nil
			}
			if !fn(n.keys[i], n.vals[i]) {
				return nil
			}
		}
		id = n.next
	}
	return nil
}

// ScanPrefix iterates entries whose key begins with prefix.
func (t *Tree) ScanPrefix(prefix []byte, fn func(key, value []byte) bool) error {
	return t.Scan(prefix, nil, func(k, v []byte) bool {
		if !bytes.HasPrefix(k, prefix) {
			return false
		}
		return fn(k, v)
	})
}

// Len counts entries with a full scan (test/diagnostic helper).
func (t *Tree) Len() (int, error) {
	n := 0
	err := t.Scan(nil, nil, func([]byte, []byte) bool { n++; return true })
	return n, err
}
