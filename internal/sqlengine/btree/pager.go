// Package btree implements the page-based B+tree underlying the relational
// engine's clustered tables and secondary indexes (the role InnoDB's trees
// play for the paper's MySQL schemas). Each tree lives in its own file —
// page 0 is the metadata page — so a table's on-disk footprint is simply its
// file sizes, which is what the paper's Table 4 measures.
package btree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
)

// PageSize is the fixed page size. 8 KiB mirrors common RDBMS defaults.
const PageSize = 8192

// Pager errors.
var (
	ErrBadPage     = errors.New("btree: page out of range")
	ErrCorruptMeta = errors.New("btree: corrupt meta page")
	ErrPagerClosed = errors.New("btree: pager is closed")
)

const pagerMagic = "BTPG0001"

// page is one cached page frame.
type page struct {
	id    uint32
	data  []byte
	dirty bool
	// used marks recent access for the clock eviction hand.
	used bool
}

// Pager provides page-granular access to a single file with a buffer pool.
// Dirty pages are never evicted — they persist only at Flush (checkpoint)
// time, which keeps the on-disk tree at the last checkpoint state between
// checkpoints (the property the engine's WAL recovery relies on). Clean
// pages are evicted with a clock sweep once the pool exceeds its target.
type Pager struct {
	file     *os.File
	path     string
	numPages uint32
	cache    map[uint32]*page
	target   int // soft cap on cached pages
	preFlush []func() error
	closed   bool
}

// OpenPager opens or creates the file. A new file is initialized with a
// meta page (page 0).
func OpenPager(path string, cachePages int) (*Pager, error) {
	if cachePages < 16 {
		cachePages = 16
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	p := &Pager{
		file:   f,
		path:   path,
		cache:  make(map[uint32]*page),
		target: cachePages,
	}
	if info.Size() == 0 {
		meta := make([]byte, PageSize)
		copy(meta, pagerMagic)
		if _, err := f.WriteAt(meta, 0); err != nil {
			f.Close()
			return nil, err
		}
		p.numPages = 1
		return p, nil
	}
	if info.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("%w: %s size %d not page aligned", ErrCorruptMeta, path, info.Size())
	}
	p.numPages = uint32(info.Size() / PageSize)
	head := make([]byte, len(pagerMagic))
	if _, err := f.ReadAt(head, 0); err != nil {
		f.Close()
		return nil, err
	}
	if string(head) != pagerMagic {
		f.Close()
		return nil, fmt.Errorf("%w: %s bad magic", ErrCorruptMeta, path)
	}
	return p, nil
}

// NumPages returns the current page count (including the meta page).
func (p *Pager) NumPages() uint32 { return p.numPages }

// FileSize returns the file's byte size.
func (p *Pager) FileSize() int64 { return int64(p.numPages) * PageSize }

// Allocate appends a zeroed page and returns its id.
func (p *Pager) Allocate() (uint32, error) {
	if p.closed {
		return 0, ErrPagerClosed
	}
	id := p.numPages
	p.numPages++
	pg := &page{id: id, data: make([]byte, PageSize), dirty: true, used: true}
	p.cache[id] = pg
	p.evictIfNeeded()
	return id, nil
}

// Get returns the page frame, reading it from disk if needed. The returned
// slice is the live frame: callers that mutate it must call MarkDirty.
func (p *Pager) Get(id uint32) ([]byte, error) {
	if p.closed {
		return nil, ErrPagerClosed
	}
	if id >= p.numPages {
		return nil, fmt.Errorf("%w: %d >= %d", ErrBadPage, id, p.numPages)
	}
	if pg, ok := p.cache[id]; ok {
		pg.used = true
		return pg.data, nil
	}
	data := make([]byte, PageSize)
	if _, err := p.file.ReadAt(data, int64(id)*PageSize); err != nil {
		return nil, err
	}
	pg := &page{id: id, data: data, used: true}
	p.cache[id] = pg
	p.evictIfNeeded()
	return data, nil
}

// MarkDirty pins the page until the next Flush.
func (p *Pager) MarkDirty(id uint32) {
	if pg, ok := p.cache[id]; ok {
		pg.dirty = true
	}
}

// evictIfNeeded drops clean pages once the pool exceeds its target. Dirty
// pages are exempt by design.
func (p *Pager) evictIfNeeded() {
	if len(p.cache) <= p.target {
		return
	}
	for id, pg := range p.cache {
		if len(p.cache) <= p.target {
			return
		}
		if pg.dirty {
			continue
		}
		if pg.used {
			pg.used = false // second chance
			continue
		}
		delete(p.cache, id)
	}
}

// OnFlush registers a hook that runs at the start of every Flush, before
// pages are written. The B+tree registers its decoded-node sync here so a
// checkpoint always serializes the logical state first.
func (p *Pager) OnFlush(fn func() error) { p.preFlush = append(p.preFlush, fn) }

// Flush writes all dirty pages and syncs the file (a checkpoint).
func (p *Pager) Flush() error {
	if p.closed {
		return ErrPagerClosed
	}
	for _, fn := range p.preFlush {
		if err := fn(); err != nil {
			return err
		}
	}
	wrote := false
	for _, pg := range p.cache {
		if !pg.dirty {
			continue
		}
		if _, err := p.file.WriteAt(pg.data, int64(pg.id)*PageSize); err != nil {
			return err
		}
		pg.dirty = false
		wrote = true
	}
	if wrote {
		return p.file.Sync()
	}
	return nil
}

// DropCache empties the buffer pool without writing dirty pages — the
// crash-simulation hook: whatever was not checkpointed is lost.
func (p *Pager) DropCache() {
	p.cache = make(map[uint32]*page)
	// The file may have grown for pages that were never flushed; trim the
	// logical page count back to the physical file.
	if info, err := p.file.Stat(); err == nil {
		p.numPages = uint32(info.Size() / PageSize)
	}
}

// Close flushes and closes the file.
func (p *Pager) Close() error {
	if p.closed {
		return nil
	}
	if err := p.Flush(); err != nil {
		p.file.Close()
		return err
	}
	p.closed = true
	return p.file.Close()
}

// CloseAbrupt closes without flushing (crash simulation).
func (p *Pager) CloseAbrupt() error {
	if p.closed {
		return nil
	}
	p.closed = true
	return p.file.Close()
}

// Meta accessors: the meta page stores the tree's root page id at a fixed
// offset after the magic.
const metaRootOff = 16

// Root reads the root page id from the meta page (0 = empty tree).
func (p *Pager) Root() (uint32, error) {
	data, err := p.Get(0)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(data[metaRootOff:]), nil
}

// SetRoot stores the root page id in the meta page.
func (p *Pager) SetRoot(root uint32) error {
	data, err := p.Get(0)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(data[metaRootOff:], root)
	p.MarkDirty(0)
	return nil
}
