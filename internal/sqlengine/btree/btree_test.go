package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"
)

func testTree(t *testing.T) (*Tree, *Pager) {
	t.Helper()
	p, err := OpenPager(filepath.Join(t.TempDir(), "t.db"), 256)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return Open(p), p
}

func TestInsertGetBasic(t *testing.T) {
	tree, _ := testTree(t)
	if _, ok, err := tree.Get([]byte("missing")); err != nil || ok {
		t.Fatalf("empty tree get: %v %v", ok, err)
	}
	for i := 0; i < 1000; i++ {
		k := []byte(fmt.Sprintf("key-%06d", i))
		v := []byte(fmt.Sprintf("val-%d", i*3))
		if err := tree.Insert(k, v); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 1000; i++ {
		k := []byte(fmt.Sprintf("key-%06d", i))
		v, ok, err := tree.Get(k)
		if err != nil || !ok {
			t.Fatalf("get %s: %v %v", k, ok, err)
		}
		if string(v) != fmt.Sprintf("val-%d", i*3) {
			t.Fatalf("get %s = %q", k, v)
		}
	}
	// Replace.
	if err := tree.Insert([]byte("key-000005"), []byte("replaced")); err != nil {
		t.Fatal(err)
	}
	v, _, _ := tree.Get([]byte("key-000005"))
	if string(v) != "replaced" {
		t.Errorf("replace = %q", v)
	}
	n, err := tree.Len()
	if err != nil || n != 1000 {
		t.Errorf("len = %d, %v", n, err)
	}
}

func TestEntryTooLarge(t *testing.T) {
	tree, _ := testTree(t)
	big := make([]byte, MaxEntrySize)
	if err := tree.Insert([]byte("k"), big); err == nil {
		t.Error("oversized entry accepted")
	}
}

func TestScanRanges(t *testing.T) {
	tree, _ := testTree(t)
	for i := 0; i < 500; i++ {
		tree.Insert([]byte(fmt.Sprintf("%04d", i)), []byte("x"))
	}
	var got []string
	tree.Scan([]byte("0100"), []byte("0110"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if len(got) != 10 || got[0] != "0100" || got[9] != "0109" {
		t.Errorf("range scan = %v", got)
	}
	// Unbounded scan is ordered and complete.
	n, prev := 0, ""
	tree.Scan(nil, nil, func(k, v []byte) bool {
		if string(k) <= prev {
			t.Errorf("out of order: %q after %q", k, prev)
		}
		prev = string(k)
		n++
		return true
	})
	if n != 500 {
		t.Errorf("full scan = %d", n)
	}
	// Early stop.
	n = 0
	tree.Scan(nil, nil, func(k, v []byte) bool { n++; return false })
	if n != 1 {
		t.Errorf("stopped scan = %d", n)
	}
	// Prefix scan.
	var pre []string
	tree.ScanPrefix([]byte("012"), func(k, v []byte) bool {
		pre = append(pre, string(k))
		return true
	})
	if len(pre) != 10 || pre[0] != "0120" {
		t.Errorf("prefix scan = %v", pre)
	}
}

func TestDelete(t *testing.T) {
	tree, _ := testTree(t)
	for i := 0; i < 300; i++ {
		tree.Insert([]byte(fmt.Sprintf("%04d", i)), []byte("v"))
	}
	for i := 0; i < 300; i += 2 {
		ok, err := tree.Delete([]byte(fmt.Sprintf("%04d", i)))
		if err != nil || !ok {
			t.Fatalf("delete %d: %v %v", i, ok, err)
		}
	}
	if ok, _ := tree.Delete([]byte("0000")); ok {
		t.Error("double delete reported success")
	}
	n, _ := tree.Len()
	if n != 150 {
		t.Errorf("len after deletes = %d", n)
	}
	if _, ok, _ := tree.Get([]byte("0002")); ok {
		t.Error("deleted key found")
	}
	if _, ok, _ := tree.Get([]byte("0001")); !ok {
		t.Error("kept key lost")
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.db")
	p, err := OpenPager(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	tree := Open(p)
	for i := 0; i < 2000; i++ {
		tree.Insert([]byte(fmt.Sprintf("%05d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p2, err := OpenPager(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	tree2 := Open(p2)
	for _, i := range []int{0, 999, 1999} {
		v, ok, err := tree2.Get([]byte(fmt.Sprintf("%05d", i)))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("reopened get %d: %q %v %v", i, v, ok, err)
		}
	}
	n, _ := tree2.Len()
	if n != 2000 {
		t.Errorf("reopened len = %d", n)
	}
}

func TestCrashLosesUncheckpointedOnly(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.db")
	p, err := OpenPager(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	tree := Open(p)
	for i := 0; i < 100; i++ {
		tree.Insert([]byte(fmt.Sprintf("%03d", i)), []byte("checkpointed"))
	}
	if err := p.Flush(); err != nil { // checkpoint
		t.Fatal(err)
	}
	for i := 100; i < 200; i++ {
		tree.Insert([]byte(fmt.Sprintf("%03d", i)), []byte("volatile"))
	}
	p.CloseAbrupt()

	p2, err := OpenPager(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	tree2 := Open(p2)
	n, _ := tree2.Len()
	if n != 100 {
		t.Errorf("after crash len = %d, want the 100 checkpointed", n)
	}
}

// TestPropertyMatchesSortedMap drives the tree against a reference map with
// random inserts, replaces and deletes, then compares full scans.
func TestPropertyMatchesSortedMap(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, err := OpenPager(filepath.Join(t.TempDir(), "q.db"), 32)
		if err != nil {
			return false
		}
		defer p.Close()
		tree := Open(p)
		ref := map[string]string{}
		for op := 0; op < 400; op++ {
			k := fmt.Sprintf("k%03d", rng.Intn(120))
			switch rng.Intn(3) {
			case 0, 1:
				v := fmt.Sprintf("v%d", rng.Int63())
				if err := tree.Insert([]byte(k), []byte(v)); err != nil {
					t.Logf("insert: %v", err)
					return false
				}
				ref[k] = v
			case 2:
				okTree, err := tree.Delete([]byte(k))
				if err != nil {
					return false
				}
				_, okRef := ref[k]
				if okTree != okRef {
					t.Logf("delete presence mismatch for %s: tree=%v ref=%v", k, okTree, okRef)
					return false
				}
				delete(ref, k)
			}
		}
		// Compare scans.
		keys := make([]string, 0, len(ref))
		for k := range ref {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		i := 0
		ok := true
		tree.Scan(nil, nil, func(k, v []byte) bool {
			if i >= len(keys) || string(k) != keys[i] || string(v) != ref[keys[i]] {
				ok = false
				return false
			}
			i++
			return true
		})
		return ok && i == len(keys)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestLargeValuesSplitCorrectly stresses variable-size entries across page
// splits.
func TestLargeValuesSplitCorrectly(t *testing.T) {
	tree, _ := testTree(t)
	rng := rand.New(rand.NewSource(7))
	vals := map[string][]byte{}
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("key-%04d", i)
		v := make([]byte, 100+rng.Intn(1500))
		rng.Read(v)
		if err := tree.Insert([]byte(k), v); err != nil {
			t.Fatal(err)
		}
		vals[k] = v
	}
	for k, want := range vals {
		got, ok, err := tree.Get([]byte(k))
		if err != nil || !ok || !bytes.Equal(got, want) {
			t.Fatalf("get %s: ok=%v err=%v match=%v", k, ok, err, bytes.Equal(got, want))
		}
	}
}

func TestPagerBadFile(t *testing.T) {
	dir := t.TempDir()
	// Non-aligned file.
	path := filepath.Join(dir, "bad.db")
	if err := writeFile(path, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenPager(path, 16); err == nil {
		t.Error("unaligned file opened")
	}
	// Wrong magic.
	path2 := filepath.Join(dir, "bad2.db")
	if err := writeFile(path2, make([]byte, PageSize)); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenPager(path2, 16); err == nil {
		t.Error("bad magic opened")
	}
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
