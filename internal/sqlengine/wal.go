package sqlengine

import (
	"bufio"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"os"
)

// The redo log records logical row operations (upsert / delete) between
// checkpoints. Because the pager never evicts dirty pages, the on-disk
// trees always reflect exactly the last checkpoint, so replaying the whole
// log on open reconstructs the pre-crash state. A checkpoint = flush all
// pagers + truncate the log.
//
// Record: crc u32 | len u32 | payload; payload = count uvarint, then per op:
// op u8 (1 upsert, 2 delete) | table str | data bytes (row or key).

// ErrCorruptWAL reports a damaged record body.
var ErrCorruptWAL = errors.New("sqlengine: corrupt redo log")

const (
	walOpUpsert = 1
	walOpDelete = 2
)

type walOp struct {
	op    byte
	table string
	data  []byte // encoded row (upsert) or key bytes (delete)
}

type redoLog struct {
	path  string
	file  *os.File
	w     *bufio.Writer
	bytes int64
}

func openRedoLog(path string) (*redoLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &redoLog{path: path, file: f, w: bufio.NewWriterSize(f, 1<<16), bytes: info.Size()}, nil
}

func (l *redoLog) append(ops []walOp) error {
	payload := binary.AppendUvarint(nil, uint64(len(ops)))
	for _, op := range ops {
		payload = append(payload, op.op)
		payload = binary.AppendUvarint(payload, uint64(len(op.table)))
		payload = append(payload, op.table...)
		payload = binary.AppendUvarint(payload, uint64(len(op.data)))
		payload = append(payload, op.data...)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(payload)))
	if _, err := l.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := l.w.Write(payload); err != nil {
		return err
	}
	l.bytes += int64(len(hdr) + len(payload))
	return nil
}

func (l *redoLog) sync() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	return l.file.Sync()
}

func (l *redoLog) flush() error { return l.w.Flush() }

func (l *redoLog) truncate() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	if err := l.file.Truncate(0); err != nil {
		return err
	}
	if _, err := l.file.Seek(0, io.SeekStart); err != nil {
		return err
	}
	l.bytes = 0
	return nil
}

func (l *redoLog) size() int64 { return l.bytes }

func (l *redoLog) close() error {
	if err := l.w.Flush(); err != nil {
		l.file.Close()
		return err
	}
	return l.file.Close()
}

// replayRedoLog streams intact records' ops to fn; a torn tail stops replay
// without error (WAL contract).
func replayRedoLog(path string, fn func(walOp) error) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil
		}
		wantCRC := binary.LittleEndian.Uint32(hdr[0:])
		plen := binary.LittleEndian.Uint32(hdr[4:])
		if plen > 1<<30 {
			return nil
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil
		}
		if crc32.ChecksumIEEE(payload) != wantCRC {
			return nil
		}
		count, n := binary.Uvarint(payload)
		if n <= 0 {
			return ErrCorruptWAL
		}
		payload = payload[n:]
		for i := uint64(0); i < count; i++ {
			if len(payload) < 1 {
				return ErrCorruptWAL
			}
			op := walOp{op: payload[0]}
			payload = payload[1:]
			tl, n := binary.Uvarint(payload)
			if n <= 0 || uint64(len(payload)-n) < tl {
				return ErrCorruptWAL
			}
			op.table = string(payload[n : n+int(tl)])
			payload = payload[n+int(tl):]
			dl, n := binary.Uvarint(payload)
			if n <= 0 || uint64(len(payload)-n) < dl {
				return ErrCorruptWAL
			}
			op.data = append([]byte(nil), payload[n:n+int(dl)]...)
			payload = payload[n+int(dl):]
			if err := fn(op); err != nil {
				return err
			}
		}
	}
}
