package repro_test

import (
	"fmt"

	"repro"
)

func exampleCube() *repro.Cube {
	dims := []string{"City", "Station", "Status"}
	cube, err := repro.BuildCube(dims, []repro.Tuple{
		{Dims: []string{"Dublin", "Fenian St", "open"}, Measure: 12},
		{Dims: []string{"Dublin", "Pearse St", "open"}, Measure: 30},
		{Dims: []string{"Dublin", "Pearse St", "closed"}, Measure: 4},
		{Dims: []string{"Cork", "Patrick St", "open"}, Measure: 9},
		{Dims: []string{"Cork", "Grand Parade", "open"}, Measure: 7},
		{Dims: []string{"Paris", "Rue Cler", "open"}, Measure: 25},
	})
	if err != nil {
		panic(err)
	}
	return cube
}

// ExampleTopK ranks stations by total measure — the iceberg/top-k shape.
// The same call works on a CubeView or a LiveStore: all three implement
// repro.Querier and answer through one query kernel.
func ExampleTopK() {
	cube := exampleCube()
	entries, err := repro.TopK(cube, "Station", nil, repro.TopKSpec{K: 3, By: repro.BySum})
	if err != nil {
		panic(err)
	}
	for _, e := range entries {
		fmt.Printf("%s: %g\n", e.Key, e.Agg.Sum)
	}
	// Output:
	// Pearse St: 34
	// Rue Cler: 25
	// Fenian St: 12
}

// ExampleRollUp collapses the cube to the City grain without rebuilding a
// cube: one sorted row per city, counts preserved.
func ExampleRollUp() {
	cube := exampleCube()
	dims, rows, err := repro.RollUp(cube, "City")
	if err != nil {
		panic(err)
	}
	fmt.Println(dims)
	for _, row := range rows {
		fmt.Printf("%s: sum=%g count=%d\n", row.Keys[0], row.Agg.Sum, row.Agg.Count)
	}
	// Output:
	// [City]
	// Cork: sum=16 count=2
	// Dublin: sum=46 count=3
	// Paris: sum=25 count=1
}

// ExampleDrillDown expands one member's children: from the city Dublin down
// to its stations.
func ExampleDrillDown() {
	cube := exampleCube()
	stations, err := repro.DrillDown(cube, map[string]string{"City": "Dublin"}, "Station")
	if err != nil {
		panic(err)
	}
	fmt.Printf("Fenian St: %g\n", stations["Fenian St"].Sum)
	fmt.Printf("Pearse St: %g\n", stations["Pearse St"].Sum)
	// Output:
	// Fenian St: 12
	// Pearse St: 34
}
