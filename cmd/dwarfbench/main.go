// Command dwarfbench regenerates the paper's evaluation tables.
//
//	dwarfbench -exp table2            # datasets (Table 2)
//	dwarfbench -exp table4            # storage sizes (Table 4)
//	dwarfbench -exp table5            # insertion times (Table 5)
//	dwarfbench -exp bao               # §5.1 flat-file baseline comparison
//	dwarfbench -exp query             # unified kernel: Cube vs zero-copy CubeView
//	dwarfbench -exp storequery        # on-store point queries per schema model
//	dwarfbench -exp parallel          # sharded-build ablation (1/2/4/8 workers)
//	dwarfbench -exp serve             # serving path: Decode vs CubeView open + q/s
//	dwarfbench -exp ingest            # live store: WAL+memtable ingest + freshness
//	dwarfbench -exp ingest -writers 1,4,16,64   # group-commit writer ladder
//	dwarfbench -exp compact           # segment compaction: decode+Merge vs MergeViews
//	dwarfbench -exp http              # live TCP load: append encoders vs reflection
//	dwarfbench -exp cache             # hot-result cache + rollups vs plain fan-out
//	dwarfbench -exp cluster           # scatter-gather over N nodes vs one store
//	dwarfbench -exp prune             # zone-map pruning: windowed queries vs full fan-out
//	dwarfbench -exp all -presets Day,Week,Month,TMonth,SMonth
//
// -workers N builds the Table 2 cubes with N shard workers (the parallel
// pipeline in internal/dwarf/parallel.go); the storage experiments reuse
// one cached cube per preset, where the worker count cannot change the
// result. The "parallel" experiment sweeps the comma-separated
// -worker-counts list against a serial baseline.
//
// Tables 4 and 5 come from the same run (one bulk save per schema model and
// dataset), exactly as in the paper. The default presets keep runtime small;
// pass the full list to reproduce the paper's scale (SMonth saves take
// minutes on the relational schemas, as they did for the authors).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/mapper"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table2, table4, table5, bao, query, storequery, parallel, serve, ingest, compact, http, cache, cluster, all")
	presetsFlag := flag.String("presets", "Day,Week,Month", "comma-separated Table 2 datasets (Day,Week,Month,TMonth,SMonth)")
	kindsFlag := flag.String("kinds", "", "comma-separated schema models to run (default: all four)")
	dir := flag.String("dir", "", "working directory for store files (default: a temp dir)")
	verify := flag.Bool("verify", false, "also Load each saved cube and check the round trip")
	workers := flag.Int("workers", 1, "shard workers for -exp table2 cube construction (1 = serial)")
	workerCounts := flag.String("worker-counts", "1,2,4,8", "worker counts swept by -exp parallel")
	repeats := flag.Int("repeats", 3, "runs per measurement in -exp parallel/serve (best kept)")
	queries := flag.Int("queries", 2000, "point queries per battery in -exp serve/query")
	batch := flag.Int("batch", 512, "tuples per Append in -exp ingest")
	parts := flag.Int("parts", 4, "input segments merged by -exp compact")
	jsonOut := flag.String("json", "", "also write -exp compact/query results as JSON to this path (e.g. BENCH_query.json)")
	connsFlag := flag.String("conns", "1,16,64", "concurrent connections swept by -exp http")
	requests := flag.Int("requests", 12000, "total requests per -exp http run")
	sealTuples := flag.Int("seal", 0, "live-store seal threshold in -exp ingest (0 = default)")
	writersFlag := flag.String("writers", "", "concurrent-writer ladder for -exp ingest, e.g. 1,4,16,64 (empty = single-writer replay)")
	sync := flag.Bool("sync", true, "fsync every Append in -exp ingest (the durable configuration)")
	nodes := flag.Int("nodes", 3, "in-process dwarfd nodes in -exp cluster")
	quiet := flag.Bool("q", false, "suppress progress lines")
	flag.Parse()

	presets := strings.Split(*presetsFlag, ",")
	for i := range presets {
		presets[i] = strings.TrimSpace(presets[i])
	}
	kinds := mapper.AllKinds()
	if *kindsFlag != "" {
		kinds = nil
		for _, k := range strings.Split(*kindsFlag, ",") {
			kinds = append(kinds, mapper.Kind(strings.TrimSpace(k)))
		}
	}
	progress := func(msg string) {
		if !*quiet {
			fmt.Fprintln(os.Stderr, msg)
		}
	}

	runTables45 := func() error {
		results, err := bench.RunStorageExperiment(kinds, presets, *dir, *verify, progress)
		if err != nil {
			return err
		}
		// Both tables come from the same run, so print both whichever was
		// asked for.
		bench.FormatTable4(results, presets).Fprint(os.Stdout)
		fmt.Println()
		bench.FormatTable5(results, presets).Fprint(os.Stdout)
		fmt.Println()
		{
			if *verify {
				t := bench.NewTable("Load (rebuild) times", "Schema model", "Dataset", "Load ms")
				for _, r := range results {
					if r.Loaded {
						t.AddRow(string(r.Kind), r.Preset, bench.FormatMs(r.LoadTime))
					}
				}
				t.Fprint(os.Stdout)
				fmt.Println()
			}
		}
		return nil
	}

	ingestOpts := bench.IngestOptions{
		BatchSize:  *batch,
		SealTuples: *sealTuples,
		Workers:    *workers,
		Sync:       *sync,
		Verify:     *verify,
		Repeats:    *repeats,
	}

	var err error
	switch *exp {
	case "table2":
		err = runTable2(presets, *workers)
	case "table4", "table5":
		err = runTables45()
	case "bao":
		err = runBao(presets, *dir)
	case "query":
		err = runQueryKernel(presets, *queries, *jsonOut, progress)
	case "storequery":
		err = runQuery(presets, *dir)
	case "parallel":
		err = runParallel(presets, *workerCounts, *repeats)
	case "serve":
		err = runServe(presets, *queries, *repeats)
	case "ingest":
		if *writersFlag != "" {
			err = runIngestLadder(presets, *writersFlag, ingestOpts, *jsonOut, progress)
		} else {
			err = runIngest(presets, ingestOpts, progress)
		}
	case "compact":
		err = runCompact(presets, *parts, *repeats, *jsonOut)
	case "http":
		err = runHTTPLoad(presets[0], *connsFlag, *requests, *jsonOut, progress)
	case "cache":
		err = runCacheBench(presets, *requests, *jsonOut, progress)
	case "cluster":
		err = runClusterBench(presets, *nodes, *queries, *jsonOut, progress)
	case "prune":
		err = runPruneBench(presets, *jsonOut, progress)
	case "all":
		if err = runTable2(presets, *workers); err == nil {
			if err = runTables45(); err == nil {
				if err = runBao(presets, *dir); err == nil {
					if err = runQueryKernel(presets[:1], *queries, "", progress); err == nil {
						err = runQuery(presets[:1], *dir)
					}
					if err == nil {
						if err = runParallel(presets[:1], *workerCounts, *repeats); err == nil {
							if err = runServe(presets[:1], *queries, *repeats); err == nil {
								if err = runIngest(presets[:1], ingestOpts, progress); err == nil {
									err = runCompact(presets[:1], *parts, *repeats, *jsonOut)
								}
							}
						}
					}
				}
			}
		}
	default:
		err = fmt.Errorf("unknown experiment %q", *exp)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dwarfbench:", err)
		os.Exit(1)
	}
}

func runTable2(presets []string, workers int) error {
	rows, err := bench.RunTable2(presets, workers)
	if err != nil {
		return err
	}
	bench.FormatTable2(rows).Fprint(os.Stdout)
	fmt.Println()
	return nil
}

func runParallel(presets []string, countsFlag string, repeats int) error {
	var counts []int
	for _, f := range strings.Split(countsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -worker-counts entry %q", f)
		}
		counts = append(counts, n)
	}
	results, err := bench.RunParallelBuild(presets, counts, repeats)
	if err != nil {
		return err
	}
	bench.FormatParallelBuild(results).Fprint(os.Stdout)
	fmt.Println()
	return nil
}

func runCompact(presets []string, parts, repeats int, jsonOut string) error {
	results, err := bench.RunCompact(presets, parts, repeats)
	if err != nil {
		return err
	}
	bench.FormatCompact(results).Fprint(os.Stdout)
	fmt.Println()
	if jsonOut != "" {
		if err := bench.WriteCompactJSON(jsonOut, results); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "wrote", jsonOut)
	}
	return nil
}

func runIngest(presets []string, opts bench.IngestOptions, progress func(string)) error {
	results, err := bench.RunIngest(presets, opts, progress)
	if err != nil {
		return err
	}
	bench.FormatIngest(results).Fprint(os.Stdout)
	fmt.Println()
	return nil
}

func runIngestLadder(presets []string, writersFlag string, opts bench.IngestOptions, jsonOut string, progress func(string)) error {
	var counts []int
	for _, f := range strings.Split(writersFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -writers entry %q", f)
		}
		counts = append(counts, n)
	}
	results, err := bench.RunIngestLadder(presets, counts, opts, progress)
	if err != nil {
		return err
	}
	bench.FormatIngestLadder(results).Fprint(os.Stdout)
	fmt.Println()
	if jsonOut != "" {
		if err := bench.WriteIngestJSON(jsonOut, results); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "wrote", jsonOut)
	}
	return nil
}

func runServe(presets []string, queries, repeats int) error {
	results, err := bench.RunServe(presets, queries, repeats)
	if err != nil {
		return err
	}
	bench.FormatServe(results).Fprint(os.Stdout)
	fmt.Println()
	return nil
}

func runBao(presets []string, dir string) error {
	results, err := bench.RunBaoComparison(presets, dir)
	if err != nil {
		return err
	}
	bench.FormatBao(results).Fprint(os.Stdout)
	fmt.Println()
	return nil
}

func runQueryKernel(presets []string, queries int, jsonOut string, progress func(string)) error {
	results, err := bench.RunQueryKernel(presets, queries, progress)
	if err != nil {
		return err
	}
	bench.FormatQueryKernel(results).Fprint(os.Stdout)
	fmt.Println()
	if jsonOut != "" {
		if err := bench.WriteQueryJSON(jsonOut, results); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "wrote", jsonOut)
	}
	return nil
}

func runCacheBench(presets []string, requests int, jsonOut string, progress func(string)) error {
	results, err := bench.RunCacheBench(presets, requests, progress)
	if err != nil {
		return err
	}
	bench.FormatCacheBench(results).Fprint(os.Stdout)
	fmt.Println()
	bench.FormatCacheLadder(results).Fprint(os.Stdout)
	fmt.Println()
	if jsonOut != "" {
		if err := bench.WriteCacheJSON(jsonOut, results); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "wrote", jsonOut)
	}
	return nil
}

func runPruneBench(presets []string, jsonOut string, progress func(string)) error {
	results, err := bench.RunPruneBench(presets, progress)
	if err != nil {
		return err
	}
	bench.FormatPruneBench(results).Fprint(os.Stdout)
	fmt.Println()
	if jsonOut != "" {
		if err := bench.WritePruneJSON(jsonOut, results); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "wrote", jsonOut)
	}
	return nil
}

func runClusterBench(presets []string, nodes, queries int, jsonOut string, progress func(string)) error {
	results, err := bench.RunClusterBench(presets, nodes, queries, progress)
	if err != nil {
		return err
	}
	bench.FormatClusterBench(results).Fprint(os.Stdout)
	fmt.Println()
	if jsonOut != "" {
		if err := bench.WriteClusterJSON(jsonOut, results); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "wrote", jsonOut)
	}
	return nil
}

func runHTTPLoad(preset, connsFlag string, requests int, jsonOut string, progress func(string)) error {
	var conns []int
	for _, f := range strings.Split(connsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -conns entry %q", f)
		}
		conns = append(conns, n)
	}
	results, handler, err := bench.RunHTTPLoad(bench.HTTPOptions{
		Preset: preset, Conns: conns, Requests: requests,
	}, progress)
	if err != nil {
		return err
	}
	bench.FormatHTTPHandler(handler).Fprint(os.Stdout)
	fmt.Println()
	bench.FormatHTTPLoad(results).Fprint(os.Stdout)
	fmt.Println()
	if jsonOut != "" {
		if err := bench.WriteHTTPJSON(jsonOut, results, handler); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "wrote", jsonOut)
	}
	return nil
}

func runQuery(presets []string, dir string) error {
	var all []bench.QueryResult
	for _, preset := range presets {
		results, err := bench.RunQueryExperiment(mapper.AllKinds(), preset, 400, dir)
		if err != nil {
			return err
		}
		all = append(all, results...)
	}
	bench.FormatQuery(all).Fprint(os.Stdout)
	fmt.Println()
	return nil
}
