// Command dwarfbench regenerates the paper's evaluation tables.
//
//	dwarfbench -exp table2            # datasets (Table 2)
//	dwarfbench -exp table4            # storage sizes (Table 4)
//	dwarfbench -exp table5            # insertion times (Table 5)
//	dwarfbench -exp bao               # §5.1 flat-file baseline comparison
//	dwarfbench -exp all -presets Day,Week,Month,TMonth,SMonth
//
// Tables 4 and 5 come from the same run (one bulk save per schema model and
// dataset), exactly as in the paper. The default presets keep runtime small;
// pass the full list to reproduce the paper's scale (SMonth saves take
// minutes on the relational schemas, as they did for the authors).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/mapper"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table2, table4, table5, bao, query, all")
	presetsFlag := flag.String("presets", "Day,Week,Month", "comma-separated Table 2 datasets (Day,Week,Month,TMonth,SMonth)")
	kindsFlag := flag.String("kinds", "", "comma-separated schema models to run (default: all four)")
	dir := flag.String("dir", "", "working directory for store files (default: a temp dir)")
	verify := flag.Bool("verify", false, "also Load each saved cube and check the round trip")
	quiet := flag.Bool("q", false, "suppress progress lines")
	flag.Parse()

	presets := strings.Split(*presetsFlag, ",")
	for i := range presets {
		presets[i] = strings.TrimSpace(presets[i])
	}
	kinds := mapper.AllKinds()
	if *kindsFlag != "" {
		kinds = nil
		for _, k := range strings.Split(*kindsFlag, ",") {
			kinds = append(kinds, mapper.Kind(strings.TrimSpace(k)))
		}
	}
	progress := func(msg string) {
		if !*quiet {
			fmt.Fprintln(os.Stderr, msg)
		}
	}

	runTables45 := func() error {
		results, err := bench.RunStorageExperiment(kinds, presets, *dir, *verify, progress)
		if err != nil {
			return err
		}
		// Both tables come from the same run, so print both whichever was
		// asked for.
		bench.FormatTable4(results, presets).Fprint(os.Stdout)
		fmt.Println()
		bench.FormatTable5(results, presets).Fprint(os.Stdout)
		fmt.Println()
		{
			if *verify {
				t := bench.NewTable("Load (rebuild) times", "Schema model", "Dataset", "Load ms")
				for _, r := range results {
					if r.Loaded {
						t.AddRow(string(r.Kind), r.Preset, bench.FormatMs(r.LoadTime))
					}
				}
				t.Fprint(os.Stdout)
				fmt.Println()
			}
		}
		return nil
	}

	var err error
	switch *exp {
	case "table2":
		err = runTable2(presets)
	case "table4", "table5":
		err = runTables45()
	case "bao":
		err = runBao(presets, *dir)
	case "query":
		err = runQuery(presets, *dir)
	case "all":
		if err = runTable2(presets); err == nil {
			if err = runTables45(); err == nil {
				if err = runBao(presets, *dir); err == nil {
					err = runQuery(presets[:1], *dir)
				}
			}
		}
	default:
		err = fmt.Errorf("unknown experiment %q", *exp)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dwarfbench:", err)
		os.Exit(1)
	}
}

func runTable2(presets []string) error {
	rows, err := bench.RunTable2(presets)
	if err != nil {
		return err
	}
	bench.FormatTable2(rows).Fprint(os.Stdout)
	fmt.Println()
	return nil
}

func runBao(presets []string, dir string) error {
	results, err := bench.RunBaoComparison(presets, dir)
	if err != nil {
		return err
	}
	bench.FormatBao(results).Fprint(os.Stdout)
	fmt.Println()
	return nil
}

func runQuery(presets []string, dir string) error {
	var all []bench.QueryResult
	for _, preset := range presets {
		results, err := bench.RunQueryExperiment(mapper.AllKinds(), preset, 400, dir)
		if err != nil {
			return err
		}
		all = append(all, results...)
	}
	bench.FormatQuery(all).Fprint(os.Stdout)
	fmt.Println()
	return nil
}
