// Command dwarfcli builds, stores and queries DWARF cubes from feed files.
//
//	dwarfcli build -in day.xml -feed bikes-xml -store NoSQL-DWARF -dir ./dw
//	dwarfcli list  -store NoSQL-DWARF -dir ./dw
//	dwarfcli query -store NoSQL-DWARF -dir ./dw -id 1 -keys '2015,06,*,*,*,*,*,*'
//	dwarfcli rollup -store NoSQL-DWARF -dir ./dw -id 1 -dim Area
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/dwarf"
	"repro/internal/hierarchy"
	"repro/internal/jsonstream"
	"repro/internal/mapper"
	"repro/internal/xmlstream"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	in := fs.String("in", "", "input feed file")
	feed := fs.String("feed", "bikes-xml", "feed spec: bikes-xml, bikes-json, carpark-xml, airquality-json")
	storeKind := fs.String("store", "NoSQL-DWARF", "schema model: MySQL-DWARF, MySQL-Min, NoSQL-DWARF, NoSQL-Min")
	dir := fs.String("dir", "./dwarfdata", "store directory")
	id := fs.Int64("id", 1, "schema id")
	keys := fs.String("keys", "", "comma-separated query keys, * = ALL")
	dim := fs.String("dim", "", "dimension for rollup/drilldown")
	fs.Parse(os.Args[2:])

	st, err := mapper.OpenStore(mapper.Kind(*storeKind), *dir, mapper.Options{}, mapper.EngineOptions{})
	if err != nil {
		fatal(err)
	}
	defer st.Close()

	switch cmd {
	case "build":
		if *in == "" {
			fatal(fmt.Errorf("build needs -in"))
		}
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		var dims []string
		var tuples []dwarf.Tuple
		switch *feed {
		case "bikes-xml":
			spec := xmlstream.BikeFeedSpec()
			dims = spec.DimNames()
			tuples, err = xmlstream.Parse(f, spec)
		case "carpark-xml":
			spec := xmlstream.CarParkFeedSpec()
			dims = spec.DimNames()
			tuples, err = xmlstream.Parse(f, spec)
		case "bikes-json":
			spec := jsonstream.BikeFeedSpec()
			dims = spec.DimNames()
			tuples, err = jsonstream.Parse(f, spec)
		case "airquality-json":
			spec := jsonstream.AirQualityFeedSpec()
			dims = spec.DimNames()
			tuples, err = jsonstream.Parse(f, spec)
		default:
			err = fmt.Errorf("unknown feed %q", *feed)
		}
		if err != nil {
			fatal(err)
		}
		cube, err := dwarf.New(dims, tuples)
		if err != nil {
			fatal(err)
		}
		sid, err := st.Save(cube)
		if err != nil {
			fatal(err)
		}
		stats := cube.Stats()
		fmt.Printf("stored schema %d: %d tuples, %d nodes, %d cells (%s)\n",
			sid, len(tuples), stats.Nodes, stats.TotalCells(), *storeKind)

	case "list":
		infos, err := st.Schemas()
		if err != nil {
			fatal(err)
		}
		for _, info := range infos {
			fmt.Printf("schema %d: dims=%v nodes=%d cells=%d size_as_mb=%d is_cube=%t tuples=%d\n",
				info.ID, info.Dimensions, info.NodeCount, info.CellCount,
				info.SizeAsMB, info.IsCube, info.SourceRows)
		}

	case "query":
		cube, err := st.Load(mapper.SchemaID(*id))
		if err != nil {
			fatal(err)
		}
		parts := strings.Split(*keys, ",")
		for i := range parts {
			parts[i] = strings.TrimSpace(parts[i])
		}
		agg, err := cube.Point(parts...)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%v -> sum=%g count=%d min=%g max=%g avg=%.2f\n",
			parts, agg.Sum, agg.Count, agg.Min, agg.Max, agg.Avg())

	case "rollup":
		cube, err := st.Load(mapper.SchemaID(*id))
		if err != nil {
			fatal(err)
		}
		if *dim == "" {
			fatal(fmt.Errorf("rollup needs -dim"))
		}
		groups, err := hierarchy.DrillDown(cube, nil, *dim)
		if err != nil {
			fatal(err)
		}
		names := make([]string, 0, len(groups))
		for k := range groups {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			agg := groups[k]
			fmt.Printf("%-20s sum=%-10g count=%-8d avg=%.2f\n", k, agg.Sum, agg.Count, agg.Avg())
		}

	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: dwarfcli <build|list|query|rollup> [flags]
  build  -in feed.xml -feed bikes-xml -store NoSQL-DWARF -dir ./dw
  list   -store NoSQL-DWARF -dir ./dw
  query  -store NoSQL-DWARF -dir ./dw -id 1 -keys '2015,06,*,*,*,*,*,*'
  rollup -store NoSQL-DWARF -dir ./dw -id 1 -dim Area`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dwarfcli:", err)
	os.Exit(1)
}
