// Command dwarfd serves DWARF cube files over HTTP, zero-copy: queries are
// answered straight off the encoded bytes through dwarf.CubeView, with a
// small LRU keeping hot views shared across requests. Point a directory of
// .dwarf files at it (dwarfcli / repro.WriteCubeFile produce them; files
// written with the v2 offset trailer open in O(1)):
//
//	dwarfd -dir /var/cubes -addr :8080 -cache 16
//
// With -live it additionally runs a WAL-backed live cube store in that
// directory: POST /ingest appends tuple batches durably, the reserved cube
// name "live" answers every query shape over sealed segments plus the
// memtable, and sealing/compaction run in the background:
//
//	dwarfd -live /var/livecube -dims Year,Month,Day,Hour,Quarter,Area,Station,Status
//
// The live store caches hot GroupBy/Pivot/TopK results (generation-stamped,
// never stale; -cache-bytes sets the budget) and can maintain pre-aggregated
// rollup segments over dimension subsets that grouped queries route through
// (-rollup, repeatable):
//
//	dwarfd -live /var/livecube -cache-bytes 67108864 -rollup Area,Status -rollup Area
//
// Endpoints:
//
//	GET  /cubes                                        registry + hot cache
//	GET  /query/point?cube=week.dwarf&key=2015&key=*…  one key per dimension
//	POST /query/range    {"cube":…,"selectors":[{"lo":…,"hi":…},…]}
//	POST /query/groupby  {"cube":…,"dim":"Area","selectors":[…],"limit":…,"offset":…}
//	POST /query/pivot    {"cube":…,"dims":["Area","Status"],"selectors":[…]}
//	POST /query/topk     {"cube":…,"dim":"Station","k":10,"by":"sum","threshold":…}
//	POST /query/rollup   {"cube":…,"keep":["Month","Area"]}
//	GET  /stats?cube=week.dwarf
//	POST /ingest         {"tuples":[{"dims":[…],"measure":…},…]}   (-live)
//	GET  /store/stats                                              (-live)
//	POST /query/partial  {"shape":…,"cube":…,…}                    (-cluster-node)
//
// -cluster-node additionally serves the unpaged partial-result wire format
// a cluster coordinator (see cmd/dwarfgw) scatter-gathers over.
//
// -warm pre-opens cube files into the view LRU at startup ("*" warms every
// .dwarf file in -dir), and -time-dim/-time-layout enable trailing-window
// queries: a /query/* body carrying "window":"24h" compiles to a range
// selector [now-24h, now] on the named dimension.
//
// Every query shape runs through the unified kernel and works identically
// on cube files and the live cube. Keyed responses (groupby/topk/rollup)
// are capped at -group-limit groups per response and paginated with
// limit/offset.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cubestore"
	"repro/internal/serve"
	"repro/internal/smartcity"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dir := flag.String("dir", "", "directory of .dwarf cube files (default: the -live dir, else .)")
	cache := flag.Int("cache", serve.DefaultCacheSize, "hot cube views kept in the LRU")
	groupLimit := flag.Int("group-limit", serve.DefaultGroupLimit,
		"max groups per group-by/top-k/rollup response (clients page with limit/offset)")
	live := flag.String("live", "", "directory of a live cube store to open (enables /ingest)")
	dims := flag.String("dims", strings.Join(smartcity.BikeDims, ","),
		"comma-separated dimension list for a newly created -live store")
	sealTuples := flag.Int("seal", cubestore.DefaultSealTuples, "live store: memtable tuples per sealed segment")
	sealAge := flag.Duration("seal-age", time.Minute, "live store: seal a non-empty memtable after this age (0 disables)")
	workers := flag.Int("workers", 1, "live store: shard workers for memtable builds and seals")
	cacheBytes := flag.Int64("cache-bytes", 64<<20,
		"live store: hot-result query cache budget in bytes (0 disables)")
	clusterNode := flag.Bool("cluster-node", false,
		"serve POST /query/partial for a cluster coordinator (dwarfgw) to scatter-gather over")
	warm := flag.String("warm", "",
		"comma-separated cube file names to pre-open into the view LRU at startup (* warms every .dwarf file in -dir)")
	timeDim := flag.String("time-dim", "",
		"dimension that query \"window\" parameters compile a range selector against")
	timeLayout := flag.String("time-layout", "2006-01-02",
		"Go time layout the -time-dim keys are formatted with")
	var rollups [][]string
	flag.Func("rollup", "live store: comma-separated dimension subset to maintain a rollup segment for (repeatable)",
		func(v string) error {
			var names []string
			for _, d := range strings.Split(v, ",") {
				if d = strings.TrimSpace(d); d != "" {
					names = append(names, d)
				}
			}
			if len(names) == 0 {
				return fmt.Errorf("empty dimension list")
			}
			rollups = append(rollups, names)
			return nil
		})
	flag.Parse()

	dimsSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "dims" {
			dimsSet = true
		}
	})

	opts := serve.Options{
		Dir: *dir, CacheSize: *cache, GroupLimit: *groupLimit, ClusterNode: *clusterNode,
		TimeDim: *timeDim, TimeLayout: *timeLayout,
	}
	if *live != "" {
		// The -dims default only applies to a store being created; an
		// existing store's manifest is the truth unless -dims was given
		// explicitly (then Open validates it against the manifest).
		var dimList []string
		if dimsSet || !cubestore.Exists(*live) {
			for _, d := range strings.Split(*dims, ",") {
				if d = strings.TrimSpace(d); d != "" {
					dimList = append(dimList, d)
				}
			}
		}
		store, err := cubestore.Open(*live, cubestore.Options{
			Dims:       dimList,
			SealTuples: *sealTuples,
			SealAge:    *sealAge,
			Workers:    *workers,
			CacheBytes: *cacheBytes,
			Rollups:    rollups,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "dwarfd:", err)
			os.Exit(1)
		}
		opts.Store = store
		if opts.Dir == "" {
			opts.Dir = *live // sealed segments are ordinary cube files
		}
		fmt.Fprintf(os.Stderr, "dwarfd: live store at %s (dims %v, %d tuples recovered)\n",
			*live, store.Dims(), store.TotalTuples())
	} else if opts.Dir == "" {
		opts.Dir = "."
	}

	fmt.Fprintf(os.Stderr, "dwarfd: serving cubes from %s on %s (cache %d)\n", opts.Dir, *addr, *cache)
	srv, err := serve.New(opts)
	if err == nil && *warm != "" {
		err = srv.Warm(warmList(*warm, opts.Dir))
	}
	if err == nil {
		// ListenAndServe only returns on failure; stop the store's background
		// maintenance before exiting (os.Exit would skip a defer).
		err = serve.NewHTTPServer(*addr, srv.Handler()).ListenAndServe()
	}
	if opts.Store != nil {
		opts.Store.Close()
	}
	fmt.Fprintln(os.Stderr, "dwarfd:", err)
	os.Exit(1)
}

// warmList expands the -warm argument: explicit comma-separated names, or
// every .dwarf file in dir for "*".
func warmList(arg, dir string) []string {
	if arg != "*" {
		var names []string
		for _, n := range strings.Split(arg, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
		return names
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".dwarf") {
			names = append(names, e.Name())
		}
	}
	return names
}
