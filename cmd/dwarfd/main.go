// Command dwarfd serves DWARF cube files over HTTP, zero-copy: queries are
// answered straight off the encoded bytes through dwarf.CubeView, with a
// small LRU keeping hot views shared across requests. Point a directory of
// .dwarf files at it (dwarfcli / repro.WriteCubeFile produce them; files
// written with the v2 offset trailer open in O(1)):
//
//	dwarfd -dir /var/cubes -addr :8080 -cache 16
//
// Endpoints:
//
//	GET  /cubes                                        registry + hot cache
//	GET  /query/point?cube=week.dwarf&key=2015&key=*…  one key per dimension
//	POST /query/range    {"cube":…,"selectors":[{"lo":…,"hi":…},…]}
//	POST /query/groupby  {"cube":…,"dim":"Area","selectors":[…]}
//	GET  /stats?cube=week.dwarf
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dir := flag.String("dir", ".", "directory of .dwarf cube files")
	cache := flag.Int("cache", serve.DefaultCacheSize, "hot cube views kept in the LRU")
	flag.Parse()

	fmt.Fprintf(os.Stderr, "dwarfd: serving cubes from %s on %s (cache %d)\n", *dir, *addr, *cache)
	if err := serve.ListenAndServe(*addr, serve.Options{Dir: *dir, CacheSize: *cache}); err != nil {
		fmt.Fprintln(os.Stderr, "dwarfd:", err)
		os.Exit(1)
	}
}
