// Command datagen emits the synthetic smart-city datasets.
//
//	datagen -preset Day -format xml  > day.xml
//	datagen -preset Week -format json > week.json
//	datagen -feed airquality -n 500 -format json > air.json
//	datagen -preset Day -format csv  > day.csv     # fact tuples
package main

import (
	"bufio"
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/smartcity"
)

func main() {
	preset := flag.String("preset", "Day", "Table 2 dataset (Day,Week,Month,TMonth,SMonth); ignored with -n")
	n := flag.Int("n", 0, "explicit record count (overrides -preset)")
	format := flag.String("format", "xml", "output format: xml, json, csv")
	feed := flag.String("feed", "bikes", "feed: bikes, carpark, airquality, auction")
	seed := flag.Int64("seed", 2016, "generator seed")
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	w := bufio.NewWriterSize(os.Stdout, 1<<16)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = bufio.NewWriterSize(f, 1<<16)
	}
	defer w.Flush()

	count := *n
	if count <= 0 {
		p, err := smartcity.PresetByName(*preset)
		if err != nil {
			fatal(err)
		}
		count = p.Tuples
	}

	var err error
	switch *feed {
	case "bikes":
		recs := smartcity.NewBikeFeed(smartcity.BikeConfig{Seed: *seed}).Take(count)
		switch *format {
		case "xml":
			err = smartcity.WriteBikesXML(w, recs)
		case "json":
			err = smartcity.WriteBikesJSON(w, recs)
		case "csv":
			cw := csv.NewWriter(w)
			cw.Write(append(append([]string{}, smartcity.BikeDims...), "measure"))
			for _, r := range recs {
				t := r.Tuple()
				cw.Write(append(t.Dims, strconv.FormatFloat(t.Measure, 'g', -1, 64)))
			}
			cw.Flush()
			err = cw.Error()
		default:
			err = fmt.Errorf("unknown format %q", *format)
		}
	case "carpark":
		recs := smartcity.NewCarParkFeed(*seed, 0).Take(count)
		switch *format {
		case "xml":
			err = smartcity.WriteCarParksXML(w, recs)
		default:
			err = fmt.Errorf("carpark feed supports xml only")
		}
	case "airquality":
		recs := smartcity.NewAirQualityFeed(*seed, 0).Take(count)
		switch *format {
		case "json":
			err = smartcity.WriteAirQualityJSON(w, recs)
		default:
			err = fmt.Errorf("airquality feed supports json only")
		}
	case "auction":
		recs := smartcity.NewAuctionFeed(*seed).Take(count)
		cw := csv.NewWriter(w)
		cw.Write(append(append([]string{}, smartcity.AuctionDims...), "price"))
		for _, r := range recs {
			t := r.Tuple()
			cw.Write(append(t.Dims, strconv.FormatFloat(t.Measure, 'g', -1, 64)))
		}
		cw.Flush()
		err = cw.Error()
	default:
		err = fmt.Errorf("unknown feed %q", *feed)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
