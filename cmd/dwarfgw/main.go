// Command dwarfgw is the cluster gateway: it fronts N dwarfd nodes (each
// started with -live … -cluster-node) and answers the full dwarfd query
// surface by scatter-gather — every query fans out to all nodes'
// /query/partial endpoints and the partials merge exactly as one store
// merges its own per-segment partials. Ingest is hash-partitioned: each
// tuple's dimension keys pick its home node, so per-node cubes hold
// disjoint cells and merge losslessly.
//
//	dwarfgw -addr :8090 -nodes http://n1:8080,http://n2:8080,http://n3:8080 \
//	        -dims Year,Month,Day,Hour,Quarter,Area,Station,Status
//
// The node list order IS the partition map — keep it stable across
// restarts, and replace a failed node in place (same position, recovered
// store) rather than removing it.
//
// Endpoints (request/response shapes mirror dwarfd's, minus the cube
// field — the gateway always queries the nodes' live cube):
//
//	GET/POST /query/point    {"keys":[…]}
//	POST     /query/range    {"selectors":[{"lo":…,"hi":…},…]}
//	POST     /query/groupby  {"dim":"Area","selectors":[…],"limit":…,"offset":…}
//	POST     /query/pivot    {"dims":["Area","Status"],"selectors":[…]}
//	POST     /query/topk     {"dim":"Station","k":10,"by":"sum","threshold":…}
//	POST     /query/rollup   {"keep":["Month","Area"]}
//	POST     /ingest         {"tuples":[{"dims":[…],"measure":…},…]}
//	GET      /cluster/stats
//
// A node failure fails the query with 502 and an error naming every failed
// node — never a silently short total. Queries carrying
// "allow_partial": true instead get the merge over the surviving nodes,
// explicitly marked with "partial": true and the failed node list.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/smartcity"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	nodes := flag.String("nodes", "", "comma-separated dwarfd node base URLs, in partition order (required)")
	dims := flag.String("dims", strings.Join(smartcity.BikeDims, ","),
		"comma-separated dimension list; must match every node's store")
	liveName := flag.String("live-name", "", "cube name queried on the nodes (default: the nodes' live cube)")
	timeout := flag.Duration("timeout", cluster.DefaultTimeout, "per-node HTTP attempt timeout")
	retries := flag.Int("retries", cluster.DefaultRetries,
		"query retries per node beyond the first attempt (-1 disables); ingest is never retried")
	backoff := flag.Duration("backoff", cluster.DefaultBackoff, "wait before the first retry, doubling per attempt")
	groupLimit := flag.Int("group-limit", cluster.DefaultGroupLimit,
		"max groups per group-by/top-k/rollup response (clients page with limit/offset)")
	flag.Parse()

	var nodeList []string
	for _, u := range strings.Split(*nodes, ",") {
		if u = strings.TrimSpace(u); u != "" {
			nodeList = append(nodeList, u)
		}
	}
	var dimList []string
	for _, d := range strings.Split(*dims, ",") {
		if d = strings.TrimSpace(d); d != "" {
			dimList = append(dimList, d)
		}
	}
	coord, err := cluster.New(cluster.Options{
		Nodes:    nodeList,
		Dims:     dimList,
		LiveName: *liveName,
		Timeout:  *timeout,
		Retries:  *retries,
		Backoff:  *backoff,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dwarfgw:", err)
		os.Exit(1)
	}

	gens, err := coord.Generations()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dwarfgw: warning: not all nodes reachable at startup: %v\n", err)
	}
	fmt.Fprintf(os.Stderr, "dwarfgw: %d nodes, %d reachable, dims %v, serving on %s\n",
		coord.NumNodes(), len(gens), dimList, *addr)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           cluster.NewGateway(coord, *groupLimit).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Fprintln(os.Stderr, "dwarfgw:", srv.ListenAndServe())
	os.Exit(1)
}
