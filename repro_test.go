package repro

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/smartcity"
)

// TestFacadeEndToEnd drives the whole public API surface: generate a feed,
// emit XML, parse, build, query, store in every schema model, reload.
func TestFacadeEndToEnd(t *testing.T) {
	recs := smartcity.NewBikeFeed(smartcity.BikeConfig{Seed: 99}).Take(400)
	var doc bytes.Buffer
	if err := smartcity.WriteBikesXML(&doc, recs); err != nil {
		t.Fatal(err)
	}
	spec := BikeXMLSpec()
	tuples, err := ParseXML(&doc, spec)
	if err != nil {
		t.Fatal(err)
	}
	cube, err := BuildCube(spec.DimNames(), tuples)
	if err != nil {
		t.Fatal(err)
	}
	allQ := []string{All, All, All, All, All, All, All, All}
	want, err := cube.Point(allQ...)
	if err != nil || want.Count != 400 {
		t.Fatalf("ALL = %v, %v", want, err)
	}

	for _, kind := range AllStoreKinds() {
		dir := filepath.Join(t.TempDir(), string(kind))
		store, err := OpenStore(kind, dir, nil)
		if err != nil {
			t.Fatal(err)
		}
		id, err := store.Save(cube)
		if err != nil {
			t.Fatal(err)
		}
		loaded, err := store.Load(id)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := loaded.Point(allQ...)
		if !got.Equal(want) {
			t.Errorf("%s: %v != %v", kind, got, want)
		}
		store.Close()
	}
}

func TestFacadeJSONAndMerge(t *testing.T) {
	recs := smartcity.NewBikeFeed(smartcity.BikeConfig{Seed: 5}).Take(100)
	var doc bytes.Buffer
	if err := smartcity.WriteBikesJSON(&doc, recs); err != nil {
		t.Fatal(err)
	}
	tuples, err := ParseJSON(&doc, BikeJSONSpec())
	if err != nil {
		t.Fatal(err)
	}
	a, err := BuildCube(BikeDims(), tuples[:50])
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildCube(BikeDims(), tuples[50:])
	if err != nil {
		t.Fatal(err)
	}
	m, err := MergeCubes(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumSourceTuples() != 100 {
		t.Errorf("merged tuples = %d", m.NumSourceTuples())
	}
}

func TestFacadeDatasetAndSelectors(t *testing.T) {
	tuples, err := BikeDataset("Day")
	if err != nil || len(tuples) != 7358 {
		t.Fatalf("dataset: %d, %v", len(tuples), err)
	}
	cube, err := BuildCube(BikeDims(), tuples)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := cube.Range([]Selector{
		SelectAll(), SelectAll(), SelectAll(), SelectRange("07", "09"),
		SelectAll(), SelectAll(), SelectAll(), SelectKeys("open", "full"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Count == 0 {
		t.Error("rush-hour range query found nothing")
	}
	if _, err := BikeDataset("Century"); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestFacadeAblationOptions(t *testing.T) {
	tuples, _ := BikeDataset("Day")
	full, err := BuildCube(BikeDims(), tuples[:1000])
	if err != nil {
		t.Fatal(err)
	}
	plain, err := BuildCube(BikeDims(), tuples[:1000], WithoutSuffixCoalescing())
	if err != nil {
		t.Fatal(err)
	}
	if full.Stats().Nodes >= plain.Stats().Nodes {
		t.Errorf("coalescing should shrink: %d vs %d", full.Stats().Nodes, plain.Stats().Nodes)
	}
}

func TestFacadeParallelBuild(t *testing.T) {
	tuples, _ := BikeDataset("Day")
	serial, err := BuildCube(BikeDims(), tuples)
	if err != nil {
		t.Fatal(err)
	}
	par, err := BuildCubeParallel(BikeDims(), tuples, 4)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Stats() != par.Stats() {
		t.Fatalf("parallel cube diverged: %+v vs %+v", serial.Stats(), par.Stats())
	}
	// The option form goes through BuildCube too.
	opt, err := BuildCube(BikeDims(), tuples, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if opt.Stats() != serial.Stats() {
		t.Fatalf("WithWorkers cube diverged: %+v vs %+v", opt.Stats(), serial.Stats())
	}
	q := []string{All, All, All, All, All, All, All, All}
	sa, _ := serial.Point(q...)
	pa, _ := par.Point(q...)
	if !sa.Equal(pa) {
		t.Errorf("ALL query: serial=%v parallel=%v", sa, pa)
	}
}

// TestFacadeServing drives the zero-copy serving surface: write an indexed
// cube file, open it as a view, compare answers, and run the dwarfd
// service over the same directory.
func TestFacadeServing(t *testing.T) {
	tuples, err := BikeDataset("Day")
	if err != nil {
		t.Fatal(err)
	}
	cube, err := BuildCube(BikeDims(), tuples)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "day.dwarf")
	if err := WriteCubeFile(cube, path); err != nil {
		t.Fatal(err)
	}
	f, err := OpenCubeFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if !f.Indexed() {
		t.Fatal("WriteCubeFile produced a file without an offset trailer")
	}
	wild := make([]string, len(BikeDims()))
	for i := range wild {
		wild[i] = All
	}
	want, err := cube.Point(wild...)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Point(wild...)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("view Point(ALL...) = %v, cube says %v", got, want)
	}
	st, err := f.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if cst := cube.Stats(); st != cst {
		t.Fatalf("view Stats = %+v, cube Stats = %+v", st, cst)
	}

	srv, err := NewCubeServer(ServeOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/stats?cube=day.dwarf")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/stats status %d", resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["nodes"] != float64(cube.Stats().Nodes) {
		t.Fatalf("/stats nodes = %v, want %d", out["nodes"], cube.Stats().Nodes)
	}
}

func TestFacadeLiveStore(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenLiveStore(dir, LiveStoreOptions{
		Dims:       []string{"Day", "Region"},
		SealTuples: 4,
		NoSync:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	batch := []Tuple{
		{Dims: []string{"d1", "north"}, Measure: 2},
		{Dims: []string{"d1", "south"}, Measure: 3},
		{Dims: []string{"d2", "north"}, Measure: 5},
	}
	if err := store.Append(batch); err != nil {
		t.Fatal(err)
	}
	agg, err := store.Point("d1", All)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Sum != 5 || agg.Count != 2 {
		t.Fatalf("live point = %+v", agg)
	}
	// Crossing the threshold seals (in the background sealer); the reopened
	// store recovers everything.
	if err := store.Append([]Tuple{{Dims: []string{"d2", "west"}, Measure: 7}}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for store.Stats().Seals == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("threshold seal never landed: %+v", store.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if st := store.Stats(); st.Seals != 1 || st.SealedTuples != 4 {
		t.Fatalf("stats after threshold seal = %+v", st)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	back, err := OpenLiveStore(dir, LiveStoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	agg, err = back.Point(All, All)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Sum != 17 || agg.Count != 4 {
		t.Fatalf("recovered ALL = %+v", agg)
	}

	// The facade serves it over HTTP too.
	srv, err := NewCubeServer(ServeOptions{Store: back})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/query/point?cube=live&key=*&key=north")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	aggOut, _ := out["aggregate"].(map[string]any)
	if aggOut["sum"] != float64(7) {
		t.Fatalf("served live point = %v", out)
	}
}
