// Quickstart: build the paper's Fig. 1 example into a DWARF cube (Fig. 2),
// run point and ALL queries, store it in the NoSQL-DWARF schema (Table 1),
// and rebuild it through the bi-directional mapper.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"repro"
)

func main() {
	// Fig. 1 — sample DWARF input: (dimension_1, ..., dimension_n, measure).
	dims := []string{"Country", "City", "Station"}
	tuples := []repro.Tuple{
		{Dims: []string{"Ireland", "Dublin", "Fenian St"}, Measure: 3},
		{Dims: []string{"Ireland", "Dublin", "Pearse St"}, Measure: 5},
		{Dims: []string{"Ireland", "Cork", "Patrick St"}, Measure: 2},
		{Dims: []string{"France", "Paris", "Rue Cler"}, Measure: 4},
	}

	// Fig. 2 — the DWARF cube.
	cube, err := repro.BuildCube(dims, tuples)
	if err != nil {
		log.Fatal(err)
	}
	stats := cube.Stats()
	fmt.Printf("built DWARF: %d nodes, %d cells (incl. ALL cells) from %d facts\n\n",
		stats.Nodes, stats.TotalCells(), stats.SourceTuples)

	// Point and ALL queries: one root-to-leaf walk each.
	queries := [][]string{
		{"Ireland", "Dublin", "Fenian St"},
		{"Ireland", "Dublin", repro.All},
		{"Ireland", repro.All, repro.All},
		{repro.All, repro.All, repro.All},
		{repro.All, "Dublin", repro.All},
	}
	for _, q := range queries {
		agg, err := cube.Point(q...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  (%-30s) sum=%-4g count=%d\n", strings.Join(q, ", "), agg.Sum, agg.Count)
	}

	// Range query: Irish cities C..D, any station.
	agg, err := cube.Range([]repro.Selector{
		repro.SelectKeys("Ireland"),
		repro.SelectRange("Cork", "Dublin"),
		repro.SelectAll(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrange (Ireland, Cork..Dublin, *): sum=%g count=%d\n", agg.Sum, agg.Count)

	// Persist in the paper's NoSQL-DWARF schema and rebuild (§3–§4).
	dir, err := os.MkdirTemp("", "quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := repro.OpenStore(repro.NoSQLDwarf, dir, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	id, err := store.Save(cube)
	if err != nil {
		log.Fatal(err)
	}
	size, err := store.StoredBytes()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsaved as schema %d in %s (%d bytes on disk)\n", id, repro.NoSQLDwarf, size)

	loaded, err := store.Load(id)
	if err != nil {
		log.Fatal(err)
	}
	back, _ := loaded.Point("Ireland", repro.All, repro.All)
	fmt.Printf("reloaded cube answers (Ireland,*,*) = sum=%g count=%d — bi-directional mapping holds\n",
		back.Sum, back.Count)
}
