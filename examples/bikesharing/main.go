// Bike sharing: the paper's end-to-end pipeline on its evaluation workload.
// A day of the synthetic bike feed is emitted as a real XML document,
// ingested back through the streaming XML mapper, built into the
// 8-dimension DWARF of the evaluation, stored in the NoSQL-DWARF schema and
// queried — including the is_cube sub-cube path.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"sort"

	"repro"
	"repro/internal/smartcity"
)

func main() {
	// 1. Harvest: one day of the bike-share feed as XML (what the city's
	// endpoint would publish).
	recs := smartcity.NewBikeFeed(smartcity.BikeConfig{Seed: 2016}).Take(7358)
	var feed bytes.Buffer
	if err := smartcity.WriteBikesXML(&feed, recs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("feed document: %d stations reports, %.1f MB of XML\n",
		len(recs), float64(feed.Len())/(1<<20))

	// 2. Transform: stream the XML into fact tuples.
	spec := repro.BikeXMLSpec()
	tuples, err := repro.ParseXML(&feed, spec)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Construct the DWARF cube.
	cube, err := repro.BuildCube(spec.DimNames(), tuples)
	if err != nil {
		log.Fatal(err)
	}
	st := cube.Stats()
	fmt.Printf("cube: %d nodes, %d cells from %d facts (8 dimensions)\n\n",
		st.Nodes, st.TotalCells(), st.SourceTuples)

	// 4. Analyse: average bikes available per area across the day.
	sels := make([]repro.Selector, 8)
	byArea, err := cube.GroupBy(5, sels) // dimension 5 = Area
	if err != nil {
		log.Fatal(err)
	}
	areas := make([]string, 0, len(byArea))
	for a := range byArea {
		areas = append(areas, a)
	}
	sort.Strings(areas)
	fmt.Println("average bikes available by area:")
	for _, a := range areas {
		agg := byArea[a]
		fmt.Printf("  %-9s avg=%-6.1f (from %d reports)\n", a, agg.Avg(), agg.Count)
	}

	// Morning rush (07-09h) vs evening rush (16-18h), city-wide.
	morning, _ := cube.Range(rushSelector("07", "09"))
	evening, _ := cube.Range(rushSelector("16", "18"))
	fmt.Printf("\nmorning rush avg bikes: %.1f; evening rush: %.1f\n\n", morning.Avg(), evening.Avg())

	// 5. Persist in the NoSQL-DWARF schema, then extract and store a
	// sub-cube (the paper's is_cube flag).
	dir, err := os.MkdirTemp("", "bikes-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := repro.OpenStore(repro.NoSQLDwarf, dir, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	id, err := store.Save(cube)
	if err != nil {
		log.Fatal(err)
	}

	rush := rushSelector("07", "09")
	sub, err := cube.Extract(rush)
	if err != nil {
		log.Fatal(err)
	}
	subID, err := store.Save(sub)
	if err != nil {
		log.Fatal(err)
	}
	infos, err := store.Schemas()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("stored schemas:")
	for _, info := range infos {
		kind := "full schema"
		if info.IsCube {
			kind = "query-derived cube (is_cube)"
		}
		fmt.Printf("  id=%d nodes=%d cells=%d size_as_mb=%d  %s\n",
			info.ID, info.NodeCount, info.CellCount, info.SizeAsMB, kind)
	}
	_ = id
	_ = subID
}

func rushSelector(fromHour, toHour string) []repro.Selector {
	sels := make([]repro.Selector, 8)
	sels[3] = repro.SelectRange(fromHour, toHour) // Hour dimension
	return sels
}
