// Air quality: JSON ingestion path. Sensor readings arrive as a JSON feed
// document, become a 7-dimension cube, and pollutant-level statistics are
// answered via GROUP BY and drill-down; the cube is persisted in the
// NoSQL-Min schema (Table 3) to exercise its secondary indexes.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"sort"

	"repro"
	"repro/internal/hierarchy"
	"repro/internal/smartcity"
)

func main() {
	// A week of half-hourly readings from 10 sensors × 4 pollutants.
	feed := smartcity.NewAirQualityFeed(42, 10)
	recs := feed.Take(10 * 4 * 48 * 7)
	var doc bytes.Buffer
	if err := smartcity.WriteAirQualityJSON(&doc, recs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("JSON feed: %d readings, %.1f MB\n", len(recs), float64(doc.Len())/(1<<20))

	spec := repro.AirQualityJSONSpec()
	tuples, err := repro.ParseJSON(&doc, spec)
	if err != nil {
		log.Fatal(err)
	}
	cube, err := repro.BuildCube(spec.DimNames(), tuples)
	if err != nil {
		log.Fatal(err)
	}
	st := cube.Stats()
	fmt.Printf("cube: %d nodes, %d cells\n\n", st.Nodes, st.TotalCells())

	// Pollutant averages city-wide (dimension 6 = Pollutant).
	sels := make([]repro.Selector, 7)
	byPollutant, err := cube.GroupBy(6, sels)
	if err != nil {
		log.Fatal(err)
	}
	names := sortedKeys(byPollutant)
	fmt.Println("city-wide pollutant averages (µg/m³):")
	for _, p := range names {
		agg := byPollutant[p]
		fmt.Printf("  %-5s avg=%-7.1f max=%-6.1f (n=%d)\n", p, agg.Avg(), agg.Max, agg.Count)
	}

	// Drill down: NO2 by zone, then one zone by sensor.
	byZone, err := hierarchy.DrillDown(cube, map[string]string{"Pollutant": "no2"}, "Zone")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nNO2 by zone:")
	for _, z := range sortedKeys(byZone) {
		fmt.Printf("  %-7s avg=%.1f\n", z, byZone[z].Avg())
	}
	bySensor, err := hierarchy.DrillDown(cube,
		map[string]string{"Pollutant": "no2", "Zone": "zone-0"}, "Sensor")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nNO2 in zone-0 by sensor:")
	for _, s := range sortedKeys(bySensor) {
		fmt.Printf("  %-10s avg=%.1f\n", s, bySensor[s].Avg())
	}

	// Persist through the Table 3 schema (two secondary indexes).
	dir, err := os.MkdirTemp("", "air-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := repro.OpenStore(repro.NoSQLMin, dir, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	id, err := store.Save(cube)
	if err != nil {
		log.Fatal(err)
	}
	size, _ := store.StoredBytes()
	fmt.Printf("\nstored as schema %d in %s (%.1f MB incl. secondary indexes)\n",
		id, repro.NoSQLMin, float64(size)/(1<<20))
	back, err := store.Load(id)
	if err != nil {
		log.Fatal(err)
	}
	total, _ := back.Point(repro.All, repro.All, repro.All, repro.All, repro.All, repro.All, "no2")
	fmt.Printf("reloaded: city-wide NO2 avg = %.1f\n", total.Avg())
}

func sortedKeys(m map[string]repro.Aggregate) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
