// Multistore: the paper's §5 evaluation in miniature. One day of bike data
// is saved in all four schema models; the program prints the Table 4/5-style
// comparison (size and bulk-insert time per schema) and verifies that every
// store rebuilds an equivalent cube.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro"
)

func main() {
	tuples, err := repro.BikeDataset("Day")
	if err != nil {
		log.Fatal(err)
	}
	cube, err := repro.BuildCube(repro.BikeDims(), tuples)
	if err != nil {
		log.Fatal(err)
	}
	st := cube.Stats()
	fmt.Printf("Day dataset: %d facts -> %d nodes, %d cells\n\n",
		st.SourceTuples, st.Nodes, st.TotalCells())

	base, err := os.MkdirTemp("", "multistore-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(base)

	allQ := make([]string, 8)
	for i := range allQ {
		allQ[i] = repro.All
	}
	want, _ := cube.Point(allQ...)

	fmt.Printf("%-13s %10s %12s %12s %8s\n", "Schema model", "size MB", "insert ms", "load ms", "verified")
	for _, kind := range repro.AllStoreKinds() {
		dir := filepath.Join(base, string(kind))
		store, err := repro.OpenStore(kind, dir, nil)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		id, err := store.Save(cube)
		if err != nil {
			log.Fatal(err)
		}
		saveMs := time.Since(start).Milliseconds()
		bytes, err := store.StoredBytes()
		if err != nil {
			log.Fatal(err)
		}
		start = time.Now()
		loaded, err := store.Load(id)
		if err != nil {
			log.Fatal(err)
		}
		loadMs := time.Since(start).Milliseconds()
		got, _ := loaded.Point(allQ...)
		verified := got.Equal(want)
		fmt.Printf("%-13s %10.2f %12d %12d %8t\n",
			kind, float64(bytes)/(1<<20), saveMs, loadMs, verified)
		store.Close()
	}
	fmt.Println("\n(see cmd/dwarfbench for the full Table 4/5 sweep incl. TMonth/SMonth)")
}
