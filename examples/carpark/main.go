// Car parks: incremental cube maintenance (the paper's §7 future work).
// A standing cube is updated batch by batch as new XML polls arrive, with
// hierarchy rollups on the growing cube; each merged version is persisted,
// showing the maintenance loop the framework targets.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"sort"

	"repro"
	"repro/internal/hierarchy"
	"repro/internal/smartcity"
)

func main() {
	feed := smartcity.NewCarParkFeed(7, 12)
	spec := repro.CarParkXMLSpec()

	dir, err := os.MkdirTemp("", "carpark-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := repro.OpenStore(repro.MySQLMin, dir, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	// Start from an empty cube, then fold in six polling batches.
	cube, err := repro.BuildCube(spec.DimNames(), nil)
	if err != nil {
		log.Fatal(err)
	}
	for batch := 1; batch <= 6; batch++ {
		recs := feed.Take(12 * 6 * 4) // four hours of 10-minute polls
		var doc bytes.Buffer
		if err := smartcity.WriteCarParksXML(&doc, recs); err != nil {
			log.Fatal(err)
		}
		tuples, err := repro.ParseXML(&doc, spec)
		if err != nil {
			log.Fatal(err)
		}
		delta, err := repro.BuildCube(spec.DimNames(), tuples)
		if err != nil {
			log.Fatal(err)
		}
		cube, err = repro.MergeCubes(cube, delta)
		if err != nil {
			log.Fatal(err)
		}
		st := cube.Stats()
		id, err := store.Save(cube)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("batch %d merged: %6d facts, %5d nodes, %6d cells -> stored as schema %d\n",
			batch, st.SourceTuples, st.Nodes, st.TotalCells(), id)
	}

	// Roll the full history up to (Hour, Zone) — RollUp keeps the cube's
	// dimension order, where Hour precedes Zone.
	up, err := hierarchy.RollUp(cube, "Zone", "Hour")
	if err != nil {
		log.Fatal(err)
	}
	upDims := up.Dims()
	zoneIdx := 0
	for i, d := range upDims {
		if d == "Zone" {
			zoneIdx = i
		}
	}
	fmt.Println("\naverage free spaces by zone (rolled-up cube):")
	byZone, err := up.GroupBy(zoneIdx, []repro.Selector{repro.SelectAll(), repro.SelectAll()})
	if err != nil {
		log.Fatal(err)
	}
	zones := make([]string, 0, len(byZone))
	for z := range byZone {
		zones = append(zones, z)
	}
	sort.Strings(zones)
	for _, z := range zones {
		// Peak-hour detail inside the zone: dims are (Hour, Zone).
		night, _ := up.Point("03", z)
		noon, _ := up.Point("12", z)
		fmt.Printf("  %-7s overall avg=%-7.1f 03:00 avg=%-7.1f 12:00 avg=%.1f\n",
			z, byZone[z].Avg(), night.Avg(), noon.Avg())
	}

	// The final store keeps every version; the latest is the live cube.
	infos, err := store.Schemas()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d cube versions stored in %s; latest has %d cells\n",
		len(infos), repro.MySQLMin, infos[len(infos)-1].CellCount)
}
