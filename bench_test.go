package repro

// The benchmark harness: one bench per published table/figure plus the
// ablations DESIGN.md calls out. Benchmarks default to the paper's smaller
// datasets (Day/Week) so `go test -bench .` completes in minutes;
// cmd/dwarfbench runs the full Table 4/5 sweep including TMonth/SMonth.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bench"
	"repro/internal/dwarf"
	"repro/internal/flatfile"
	"repro/internal/mapper"
	"repro/internal/nosql"
	"repro/internal/smartcity"
)

// benchPresets are the dataset scales exercised by `go test -bench`.
var benchPresets = []string{"Day", "Week"}

// BenchmarkTable2Datasets regenerates Table 2: dataset generation, XML
// emission size and cube construction for each preset.
func BenchmarkTable2Datasets(b *testing.B) {
	b.ReportAllocs()
	for _, preset := range benchPresets {
		b.Run(preset, func(b *testing.B) {
			b.ReportAllocs()
			p, err := smartcity.PresetByName(preset)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				recs, err := smartcity.DatasetRecords(preset)
				if err != nil {
					b.Fatal(err)
				}
				tuples := make([]dwarf.Tuple, len(recs))
				for j, r := range recs {
					tuples[j] = r.Tuple()
				}
				cube, err := dwarf.New(smartcity.BikeDims, tuples)
				if err != nil {
					b.Fatal(err)
				}
				if cube.NumSourceTuples() != p.Tuples {
					b.Fatalf("tuple count %d != Table 2's %d", cube.NumSourceTuples(), p.Tuples)
				}
			}
			b.ReportMetric(float64(p.Tuples), "tuples")
		})
	}
}

// benchSave measures one store kind saving one preset's cube; the stored
// size is attached as a metric, so this single harness regenerates both the
// Table 4 row (size) and the Table 5 row (time).
func benchSave(b *testing.B, kind mapper.Kind, preset string) {
	cube, err := bench.DatasetCube(preset)
	if err != nil {
		b.Fatal(err)
	}
	var lastBytes int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := filepath.Join(b.TempDir(), fmt.Sprintf("s%d", i))
		st, err := mapper.OpenStore(kind, dir, mapper.Options{}, mapper.EngineOptions{})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := st.Save(cube); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if lastBytes, err = st.StoredBytes(); err != nil {
			b.Fatal(err)
		}
		st.Close()
		os.RemoveAll(dir)
		b.StartTimer()
	}
	b.ReportMetric(float64(lastBytes)/(1<<20), "MB-stored")
}

// BenchmarkTable4StorageSize regenerates Table 4 (stored MB is the
// "MB-stored" metric of each sub-benchmark).
func BenchmarkTable4StorageSize(b *testing.B) {
	b.ReportAllocs()
	for _, kind := range mapper.AllKinds() {
		for _, preset := range benchPresets {
			b.Run(fmt.Sprintf("%s/%s", kind, preset), func(b *testing.B) {
				b.ReportAllocs()
				benchSave(b, kind, preset)
			})
		}
	}
}

// BenchmarkTable5InsertTime regenerates Table 5 (ns/op is the bulk-insert
// time).
func BenchmarkTable5InsertTime(b *testing.B) {
	b.ReportAllocs()
	for _, kind := range mapper.AllKinds() {
		for _, preset := range benchPresets {
			b.Run(fmt.Sprintf("%s/%s", kind, preset), func(b *testing.B) {
				b.ReportAllocs()
				benchSave(b, kind, preset)
			})
		}
	}
}

// BenchmarkBaoComparison regenerates the §5.1 flat-file baseline: writing
// the cube in both Bao-et-al. clusterings, size as a metric.
func BenchmarkBaoComparison(b *testing.B) {
	b.ReportAllocs()
	for _, layout := range []flatfile.Layout{flatfile.Hierarchical, flatfile.Recursive} {
		for _, preset := range benchPresets {
			b.Run(fmt.Sprintf("%s/%s", layout, preset), func(b *testing.B) {
				b.ReportAllocs()
				cube, err := bench.DatasetCube(preset)
				if err != nil {
					b.Fatal(err)
				}
				var size int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					path := filepath.Join(b.TempDir(), "cube.dwf")
					if size, err = flatfile.Write(path, cube, layout); err != nil {
						b.Fatal(err)
					}
					b.StopTimer()
					os.Remove(path)
					b.StartTimer()
				}
				b.ReportMetric(float64(size)/(1<<20), "MB-stored")
			})
		}
	}
}

// BenchmarkCubeConstruction isolates DWARF build cost per dataset scale.
func BenchmarkCubeConstruction(b *testing.B) {
	b.ReportAllocs()
	for _, preset := range benchPresets {
		b.Run(preset, func(b *testing.B) {
			b.ReportAllocs()
			tuples, err := bench.DatasetTuples(preset)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dwarf.New(smartcity.BikeDims, tuples); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(tuples)), "tuples")
		})
	}
}

// BenchmarkBuildParallel measures the sharded construction pipeline against
// the serial baseline at 1/2/4/8 workers (workers-1 runs the serial code
// path; the cube is structurally identical at every width).
func BenchmarkBuildParallel(b *testing.B) {
	b.ReportAllocs()
	for _, preset := range benchPresets {
		tuples, err := bench.DatasetTuples(preset)
		if err != nil {
			b.Fatal(err)
		}
		serial, err := dwarf.New(smartcity.BikeDims, tuples)
		if err != nil {
			b.Fatal(err)
		}
		want := serial.Stats()
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers-%d", preset, workers), func(b *testing.B) {
				b.ReportAllocs()
				var cube *dwarf.Cube
				for i := 0; i < b.N; i++ {
					if cube, err = dwarf.New(smartcity.BikeDims, tuples, dwarf.WithWorkers(workers)); err != nil {
						b.Fatal(err)
					}
				}
				if got := cube.Stats(); got.Nodes != want.Nodes || got.Cells != want.Cells {
					b.Fatalf("parallel cube diverged: %+v vs %+v", got, want)
				}
				b.ReportMetric(float64(len(tuples)), "tuples")
			})
		}
	}
}

// BenchmarkPointQuery measures in-memory point and wildcard lookups.
func BenchmarkPointQuery(b *testing.B) {
	b.ReportAllocs()
	cube, err := bench.DatasetCube("Week")
	if err != nil {
		b.Fatal(err)
	}
	var probes [][]string
	cube.Tuples(func(keys []string, _ dwarf.Aggregate) bool {
		probes = append(probes, append([]string(nil), keys...))
		return len(probes) < 512
	})
	b.Run("exact", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cube.Point(probes[i%len(probes)]...); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("wildcard-suffix", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := append([]string(nil), probes[i%len(probes)]...)
			q[6], q[7] = dwarf.All, dwarf.All
			if _, err := cube.Point(q...); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("all-dims", func(b *testing.B) {
		b.ReportAllocs()
		q := []string{dwarf.All, dwarf.All, dwarf.All, dwarf.All, dwarf.All, dwarf.All, dwarf.All, dwarf.All}
		for i := 0; i < b.N; i++ {
			if _, err := cube.Point(q...); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRangeAndGroupBy measures the richer query primitives.
func BenchmarkRangeAndGroupBy(b *testing.B) {
	b.ReportAllocs()
	cube, err := bench.DatasetCube("Week")
	if err != nil {
		b.Fatal(err)
	}
	sels := []dwarf.Selector{
		dwarf.SelectAll(), dwarf.SelectAll(), dwarf.SelectRange("01", "15"),
		dwarf.SelectRange("07", "09"), dwarf.SelectAll(),
		dwarf.SelectAll(), dwarf.SelectAll(), dwarf.SelectKeys("open"),
	}
	b.Run("range", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cube.Range(sels); err != nil {
				b.Fatal(err)
			}
		}
	})
	all := []dwarf.Selector{
		dwarf.SelectAll(), dwarf.SelectAll(), dwarf.SelectAll(), dwarf.SelectAll(),
		dwarf.SelectAll(), dwarf.SelectAll(), dwarf.SelectAll(), dwarf.SelectAll(),
	}
	b.Run("groupby-area", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cube.GroupBy(5, all); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkIncrementalMerge measures the §7 maintenance primitive: folding
// one fresh day into a standing week cube.
func BenchmarkIncrementalMerge(b *testing.B) {
	b.ReportAllocs()
	week, err := bench.DatasetCube("Week")
	if err != nil {
		b.Fatal(err)
	}
	day := smartcity.NewBikeFeed(smartcity.BikeConfig{Seed: 77}).Take(7358)
	tuples := make([]dwarf.Tuple, len(day))
	for i, r := range day {
		tuples[i] = r.Tuple()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := week.Append(tuples); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSuffixCoalescing quantifies DWARF's compression: node
// counts with full coalescing, hash-consing off, and no sharing at all.
func BenchmarkAblationSuffixCoalescing(b *testing.B) {
	b.ReportAllocs()
	tuples, err := bench.DatasetTuples("Day")
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name string
		opts []dwarf.Option
	}{
		{"full-coalescing", nil},
		{"no-hash-consing", []dwarf.Option{dwarf.WithoutHashConsing()}},
		{"no-sharing", []dwarf.Option{dwarf.WithoutSuffixCoalescing()}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			var nodes int
			for i := 0; i < b.N; i++ {
				cube, err := dwarf.New(smartcity.BikeDims, tuples, tc.opts...)
				if err != nil {
					b.Fatal(err)
				}
				nodes = cube.Stats().Nodes
			}
			b.ReportMetric(float64(nodes), "nodes")
		})
	}
}

// BenchmarkAblationBatchSize sweeps the bulk-insert batch size on the
// NoSQL-DWARF store (the paper inserts "in bulk"; this shows why).
func BenchmarkAblationBatchSize(b *testing.B) {
	b.ReportAllocs()
	cube, err := bench.DatasetCube("Day")
	if err != nil {
		b.Fatal(err)
	}
	for _, size := range []int{1, 10, 100, 1000, 10000} {
		b.Run(fmt.Sprintf("batch-%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dir := filepath.Join(b.TempDir(), fmt.Sprintf("b%d", i))
				st, err := mapper.NewNoSQLDwarf(dir, mapper.Options{BatchSize: size}, nosql.Options{})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := st.Save(cube); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				st.Close()
				os.RemoveAll(dir)
				b.StartTimer()
			}
		})
	}
}

// BenchmarkAblationIndexSerialization isolates the modelled Cassandra
// behaviour behind Table 5's NoSQL-Min row: per-row write-path
// serialization for indexed batches vs. plain group commit.
func BenchmarkAblationIndexSerialization(b *testing.B) {
	b.ReportAllocs()
	cube, err := bench.DatasetCube("Day")
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		opts nosql.Options
	}{
		{"serialized-per-row", nosql.Options{}},
		{"group-commit", nosql.Options{GroupCommitIndexedBatches: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dir := filepath.Join(b.TempDir(), fmt.Sprintf("i%d", i))
				st, err := mapper.NewNoSQLMin(dir, mapper.Options{}, tc.opts)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := st.Save(cube); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				st.Close()
				os.RemoveAll(dir)
				b.StartTimer()
			}
		})
	}
}

// BenchmarkAblationDimensions sweeps cube dimensionality at a fixed fact
// count, isolating how dimension count drives DWARF size.
func BenchmarkAblationDimensions(b *testing.B) {
	b.ReportAllocs()
	feed := smartcity.NewBikeFeed(smartcity.BikeConfig{Seed: 9})
	recs := feed.Take(7358)
	for _, nd := range []int{2, 4, 6, 8} {
		b.Run(fmt.Sprintf("dims-%d", nd), func(b *testing.B) {
			b.ReportAllocs()
			dims := smartcity.BikeDims[8-nd:]
			tuples := make([]dwarf.Tuple, len(recs))
			for i, r := range recs {
				full := r.Tuple()
				tuples[i] = dwarf.Tuple{Dims: full.Dims[8-nd:], Measure: full.Measure}
			}
			var cells int
			for i := 0; i < b.N; i++ {
				cube, err := dwarf.New(dims, tuples)
				if err != nil {
					b.Fatal(err)
				}
				cells = cube.Stats().TotalCells()
			}
			b.ReportMetric(float64(cells), "cells")
		})
	}
}

// BenchmarkStoreLoad measures the bi-directional mapper's read side.
func BenchmarkStoreLoad(b *testing.B) {
	b.ReportAllocs()
	for _, kind := range mapper.AllKinds() {
		b.Run(string(kind), func(b *testing.B) {
			b.ReportAllocs()
			cube, err := bench.DatasetCube("Day")
			if err != nil {
				b.Fatal(err)
			}
			dir := b.TempDir()
			st, err := mapper.OpenStore(kind, dir, mapper.Options{}, mapper.EngineOptions{})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			id, err := st.Save(cube)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := st.Load(id); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOnStoreQuery measures point queries walked directly against the
// stored rows of each schema model (§5.1's anticipated query-time impact of
// dropping the node construct, plus §7's query primitives).
func BenchmarkOnStoreQuery(b *testing.B) {
	b.ReportAllocs()
	for _, kind := range mapper.AllKinds() {
		b.Run(string(kind), func(b *testing.B) {
			b.ReportAllocs()
			cube, err := bench.DatasetCube("Day")
			if err != nil {
				b.Fatal(err)
			}
			st, err := mapper.OpenStore(kind, b.TempDir(), mapper.Options{}, mapper.EngineOptions{})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			id, err := st.Save(cube)
			if err != nil {
				b.Fatal(err)
			}
			pq := st.(mapper.PointQuerier)
			var probes [][]string
			cube.Tuples(func(keys []string, _ dwarf.Aggregate) bool {
				probes = append(probes, append([]string(nil), keys...))
				return len(probes) < 128
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pq.PointOnStore(id, probes[i%len(probes)]...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFlatFilePointQuery measures on-disk point queries against both
// Bao-et-al. layouts (their point-vs-range design goal).
func BenchmarkFlatFilePointQuery(b *testing.B) {
	b.ReportAllocs()
	cube, err := bench.DatasetCube("Day")
	if err != nil {
		b.Fatal(err)
	}
	var probes [][]string
	cube.Tuples(func(keys []string, _ dwarf.Aggregate) bool {
		probes = append(probes, append([]string(nil), keys...))
		return len(probes) < 256
	})
	for _, layout := range []flatfile.Layout{flatfile.Hierarchical, flatfile.Recursive} {
		b.Run(layout.String(), func(b *testing.B) {
			b.ReportAllocs()
			path := filepath.Join(b.TempDir(), "cube.dwf")
			if _, err := flatfile.Write(path, cube, layout); err != nil {
				b.Fatal(err)
			}
			f, err := flatfile.Open(path)
			if err != nil {
				b.Fatal(err)
			}
			defer f.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.Point(probes[i%len(probes)]...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServeOpen measures making a cube servable: full Decode vs the
// zero-copy OpenView paths (the dwarfd cold-start cost).
func BenchmarkServeOpen(b *testing.B) {
	b.ReportAllocs()
	cube, err := bench.DatasetCube("Week")
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cube.EncodeIndexed(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.Run("decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := dwarf.DecodeBytes(data); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("view", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := dwarf.OpenView(data); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("view-trusted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := dwarf.OpenViewTrusted(data); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkServePointQuery mirrors BenchmarkPointQuery against the
// zero-copy view instead of the decoded cube.
func BenchmarkServePointQuery(b *testing.B) {
	b.ReportAllocs()
	cube, err := bench.DatasetCube("Week")
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cube.EncodeIndexed(&buf); err != nil {
		b.Fatal(err)
	}
	view, err := dwarf.OpenView(buf.Bytes())
	if err != nil {
		b.Fatal(err)
	}
	var probes [][]string
	cube.Tuples(func(keys []string, _ dwarf.Aggregate) bool {
		probes = append(probes, append([]string(nil), keys...))
		return len(probes) < 512
	})
	b.Run("exact", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := view.Point(probes[i%len(probes)]...); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("all-dims", func(b *testing.B) {
		b.ReportAllocs()
		q := []string{dwarf.All, dwarf.All, dwarf.All, dwarf.All, dwarf.All, dwarf.All, dwarf.All, dwarf.All}
		for i := 0; i < b.N; i++ {
			if _, err := view.Point(q...); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCompactSegments measures the store's steady-state maintenance
// path — merging k sealed segments into one — both ways: the seed's
// decode + pairwise Merge + re-encode, and the streaming zero-copy k-way
// MergeViews. allocs/op is the headline: the streaming path never
// materializes a node graph.
func BenchmarkCompactSegments(b *testing.B) {
	b.ReportAllocs()
	tuples, err := bench.DatasetTuples("Day")
	if err != nil {
		b.Fatal(err)
	}
	const parts = 4
	segments := make([][]byte, parts)
	for i := 0; i < parts; i++ {
		lo, hi := i*len(tuples)/parts, (i+1)*len(tuples)/parts
		c, err := dwarf.New(smartcity.BikeDims, tuples[lo:hi])
		if err != nil {
			b.Fatal(err)
		}
		var buf bytes.Buffer
		if err := c.EncodeIndexed(&buf); err != nil {
			b.Fatal(err)
		}
		segments[i] = buf.Bytes()
	}
	b.Run("decode-pairwise", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			merged, err := dwarf.DecodeBytes(segments[0])
			if err != nil {
				b.Fatal(err)
			}
			for _, seg := range segments[1:] {
				c, err := dwarf.DecodeBytes(seg)
				if err != nil {
					b.Fatal(err)
				}
				if merged, err = dwarf.Merge(merged, c); err != nil {
					b.Fatal(err)
				}
			}
			var buf bytes.Buffer
			if err := merged.EncodeIndexed(&buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("streaming-kway", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			views := make([]*dwarf.CubeView, parts)
			for j, seg := range segments {
				v, err := dwarf.OpenViewTrusted(seg)
				if err != nil {
					b.Fatal(err)
				}
				views[j] = v
			}
			if _, _, err := dwarf.MergeViewsBytes(views...); err != nil {
				b.Fatal(err)
			}
		}
	})
}
