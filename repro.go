// Package repro is the public facade of the reproduction of Scriney &
// Roantree, "Efficient Cube Construction for Smart City Data" (EDBT/ICDT
// 2016 Workshops): DWARF cube construction from XML/JSON smart-city feeds
// and bi-directional persistence into four storage schema models over
// from-scratch columnar-NoSQL and relational engines.
//
// The facade re-exports the library's main entry points so downstream users
// program against one package:
//
//	tuples, _ := repro.ParseXML(feed, repro.BikeXMLSpec())
//	cube, _ := repro.BuildCube(repro.BikeDims(), tuples)
//	store, _ := repro.OpenStore(repro.NoSQLDwarf, dir, nil)
//	id, _ := store.Save(cube)
//	back, _ := store.Load(id)
//
// The implementation packages live under internal/: internal/dwarf (the
// cube), internal/nosql and internal/sqlengine (the storage engines),
// internal/mapper (the four schema models), internal/smartcity (synthetic
// feeds), internal/xmlstream and internal/jsonstream (ingestion),
// internal/flatfile (the Bao-et-al. baselines), internal/hierarchy
// (rollup/drill-down) and internal/bench (the experiment harness).
package repro

import (
	"io"
	"os"
	"path/filepath"

	"repro/internal/cubestore"
	"repro/internal/dwarf"
	"repro/internal/jsonstream"
	"repro/internal/mapper"
	"repro/internal/query"
	"repro/internal/serve"
	"repro/internal/smartcity"
	"repro/internal/xmlstream"
)

// Core cube types.
type (
	// Cube is a constructed DWARF cube.
	Cube = dwarf.Cube
	// Tuple is one fact: dimension keys plus a measure.
	Tuple = dwarf.Tuple
	// Aggregate is the aggregation state of a cell (sum/count/min/max).
	Aggregate = dwarf.Aggregate
	// Selector restricts one dimension of a range query.
	Selector = dwarf.Selector
	// CubeOption tunes construction (ablation switches).
	CubeOption = dwarf.Option
)

// All is the query wildcard aggregating over a dimension.
const All = dwarf.All

// BuildCube constructs a DWARF cube from fact tuples.
func BuildCube(dims []string, tuples []Tuple, opts ...CubeOption) (*Cube, error) {
	return dwarf.New(dims, tuples, opts...)
}

// BuildCubeParallel constructs a DWARF cube with a sharded parallel build:
// the sorted fact stream is split by first-dimension key ranges and one
// builder goroutine runs per shard. workers <= 0 uses all CPUs. The result
// is structurally identical to BuildCube over the same facts.
func BuildCubeParallel(dims []string, tuples []Tuple, workers int, opts ...CubeOption) (*Cube, error) {
	return dwarf.NewParallel(dims, tuples, workers, opts...)
}

// MergeCubes combines two cubes over the same dimensions (incremental
// maintenance).
func MergeCubes(a, b *Cube) (*Cube, error) { return dwarf.Merge(a, b) }

// MergeAllCubes folds any number of cubes over the same dimensions in one
// k-way pass — cheaper than a chain of MergeCubes and bit-identical in its
// aggregates.
func MergeAllCubes(cubes ...*Cube) (*Cube, error) { return dwarf.MergeAll(cubes...) }

// CubeMergeStats describes one streaming merge (MergeCubeViews).
type CubeMergeStats = dwarf.MergeStats

// MergeCubeViews merges k encoded cubes directly view-to-bytes, writing one
// v2-indexed stream to dst without materializing any node graph — the
// engine behind live-store segment compaction. The output is the canonical
// encoding of the merged facts.
func MergeCubeViews(dst io.Writer, views ...*CubeView) (CubeMergeStats, error) {
	return dwarf.MergeViews(dst, views...)
}

// Zero-copy serving types.
type (
	// CubeView answers queries directly against encoded cube bytes — no
	// node graph on the heap, safe for concurrent readers.
	CubeView = dwarf.CubeView
	// CubeFile is a CubeView backed by a (possibly mmap'd) cube file;
	// Close releases the mapping.
	CubeFile = dwarf.ViewFile
)

// WriteCubeFile encodes the cube to path with the v2 node-offset trailer,
// so OpenCubeFile (and dwarfd) can open it in O(1). The write goes through
// a temp file and rename, so readers never observe a partial cube.
func WriteCubeFile(c *Cube, path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".dwarfcube-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := c.EncodeIndexed(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// OpenCubeFile opens an encoded cube file as a zero-copy view, mmap'd where
// the platform allows. Files carrying the offset trailer open in O(1);
// plain v1 files are checksummed at open and indexed on first query.
func OpenCubeFile(path string) (*CubeFile, error) { return dwarf.OpenViewFile(path) }

// OpenCubeView opens a view over encoded cube bytes held in memory.
func OpenCubeView(data []byte) (*CubeView, error) { return dwarf.OpenView(data) }

// Live cube store (streaming ingestion).
type (
	// LiveStore is a WAL-backed live cube store: durable streaming Appends,
	// automatic sealing into immutable cube segments, background
	// compaction, and queries that fan out over segments plus the live
	// memtable so answers reflect every acknowledged tuple.
	LiveStore = cubestore.Store
	// LiveStoreOptions tunes OpenLiveStore (dimensions, seal thresholds,
	// compaction fanout, durability).
	LiveStoreOptions = cubestore.Options
	// LiveStoreStats is a point-in-time description of a LiveStore.
	LiveStoreStats = cubestore.Stats
)

// OpenLiveStore opens (creating if needed) a live cube store rooted at dir,
// recovering any sealed segments and unsealed WAL tuples from a previous
// run. opts.Dims is required for a new store; closing the store leaves
// everything durable for the next OpenLiveStore.
func OpenLiveStore(dir string, opts LiveStoreOptions) (*LiveStore, error) {
	return cubestore.Open(dir, opts)
}

// ServeOptions configures the dwarfd query service. Set Store to also
// serve a live cube store (POST /ingest, GET /store/stats, and the
// reserved "live" cube name for queries).
type ServeOptions = serve.Options

// NewCubeServer builds the dwarfd HTTP query service over a directory of
// .dwarf files; mount its Handler on any mux or listener.
func NewCubeServer(opts ServeOptions) (*serve.Server, error) { return serve.New(opts) }

// Serve runs the dwarfd query service at addr over a directory of .dwarf
// cube files, blocking until the listener fails.
func Serve(addr, dir string) error {
	return serve.ListenAndServe(addr, serve.Options{Dir: dir})
}

// Query selector constructors.
var (
	SelectAll   = dwarf.SelectAll
	SelectKeys  = dwarf.SelectKeys
	SelectRange = dwarf.SelectRange
)

// Unified query engine surface. Every type below answers through one query
// kernel, so a query shape means exactly the same thing on an in-memory
// Cube, a zero-copy CubeView/CubeFile and a LiveStore.
type (
	// Querier is the query surface shared by *Cube, *CubeView and
	// *LiveStore: Point, Range, GroupBy, Pivot and TopK.
	Querier = query.Querier
	// PivotGroup is one row of a multi-dimension GroupBy (Pivot/RollUp).
	PivotGroup = dwarf.PivotGroup
	// TopKEntry is one ranked group of a TopK query.
	TopKEntry = dwarf.GroupEntry
	// TopKSpec shapes a TopK/iceberg query: ranking metric, optional
	// threshold, and the K cut.
	TopKSpec = dwarf.TopKSpec
	// Metric names the aggregate component TopK ranks by.
	Metric = dwarf.Metric
)

// The rankable aggregate components for TopKSpec.By.
const (
	BySum   = dwarf.BySum
	ByCount = dwarf.ByCount
	ByMin   = dwarf.ByMin
	ByMax   = dwarf.ByMax
	ByAvg   = dwarf.ByAvg
)

// TopK ranks the groups of the named dimension by spec's metric and returns
// the surviving entries best first (iceberg threshold and K cut applied
// after all partial aggregates are merged). q may be a cube, a view or a
// live store.
func TopK(q Querier, dim string, sels []Selector, spec TopKSpec) ([]TopKEntry, error) {
	return query.TopKByName(q, dim, sels, spec)
}

// RollUp collapses q to the named dimensions (in cube dimension order),
// aggregating everything else away through ALL cells: one sorted row per
// surviving key combination, counts and min/max preserved. It runs directly
// on views and live stores — no cube rebuild, no decoding.
func RollUp(q Querier, keep ...string) (dims []string, rows []PivotGroup, err error) {
	return query.RollUp(q, keep...)
}

// DrillDown enumerates the members of the named dimension under a fixed
// path: fixed maps dimension name → key, missing dimensions are wildcards.
// Each member key maps to its aggregate under the path.
func DrillDown(q Querier, fixed map[string]string, dim string) (map[string]Aggregate, error) {
	return query.DrillDown(q, fixed, dim)
}

// Construction ablation switches and the parallel-build worker option.
var (
	WithoutSuffixCoalescing = dwarf.WithoutSuffixCoalescing
	WithoutHashConsing      = dwarf.WithoutHashConsing
	WithWorkers             = dwarf.WithWorkers
)

// Storage schema models (the paper's four).
type (
	// Store persists DWARF cubes under one schema model.
	Store = mapper.Store
	// StoreKind names a schema model.
	StoreKind = mapper.Kind
	// SchemaID identifies a stored cube.
	SchemaID = mapper.SchemaID
	// SchemaInfo is a stored cube's metadata row.
	SchemaInfo = mapper.SchemaInfo
	// StoreOptions tunes batching.
	StoreOptions = mapper.Options
)

// The four schema models of the evaluation.
const (
	MySQLDwarf = mapper.KindMySQLDwarf
	MySQLMin   = mapper.KindMySQLMin
	NoSQLDwarf = mapper.KindNoSQLDwarf
	NoSQLMin   = mapper.KindNoSQLMin
)

// AllStoreKinds returns the four schema models in the paper's order.
func AllStoreKinds() []StoreKind { return mapper.AllKinds() }

// OpenStore opens a store of the given kind rooted at dir. opts may be nil
// for defaults.
func OpenStore(kind StoreKind, dir string, opts *StoreOptions) (Store, error) {
	var o StoreOptions
	if opts != nil {
		o = *opts
	}
	return mapper.OpenStore(kind, dir, o, mapper.EngineOptions{})
}

// Feed ingestion.
type (
	// XMLSpec maps an XML feed onto fact tuples.
	XMLSpec = xmlstream.Spec
	// JSONSpec maps a JSON feed onto fact tuples.
	JSONSpec = jsonstream.Spec
)

// ParseXML extracts fact tuples from an XML feed document.
func ParseXML(r io.Reader, spec XMLSpec) ([]Tuple, error) { return xmlstream.Parse(r, spec) }

// ParseJSON extracts fact tuples from a JSON feed document.
func ParseJSON(r io.Reader, spec JSONSpec) ([]Tuple, error) { return jsonstream.Parse(r, spec) }

// Ready-made specs for the synthetic smart-city feeds.
var (
	BikeXMLSpec        = xmlstream.BikeFeedSpec
	CarParkXMLSpec     = xmlstream.CarParkFeedSpec
	BikeJSONSpec       = jsonstream.BikeFeedSpec
	AirQualityJSONSpec = jsonstream.AirQualityFeedSpec
)

// BikeDims returns the evaluation's 8-dimension bike cube layout.
func BikeDims() []string { return append([]string(nil), smartcity.BikeDims...) }

// BikeDataset generates one of the paper's Table 2 datasets
// (Day/Week/Month/TMonth/SMonth) as fact tuples.
func BikeDataset(preset string) ([]Tuple, error) { return smartcity.Dataset(preset) }
